//! WAL-shipping replication: a primary streams its durable log to read
//! replicas; an operator promotes a replica when the primary dies.
//!
//! # Model (stated honestly)
//!
//! This is **log shipping with operator-driven failover**, not consensus.
//! There is no leader election, no fencing of a deposed primary, and no
//! automatic reconfiguration: `Promote` makes one replica writable and bumps
//! a wire-visible *term*, and it is the operator's job to stop the old
//! primary and repoint surviving replicas. What the protocol does guarantee:
//!
//! * **Acked writes survive failover under sync mode.** With
//!   [`ReplMode::Sync`], an `Insert` is acknowledged only after `quorum`
//!   replicas have applied the record, fsync'd it into their own WAL, and
//!   acked it back — fsync-before-ack extended across the wire. Any replica
//!   that contributed to the quorum can be promoted without losing the write.
//! * **Replicas are never torn.** Segments carry the same checksummed
//!   envelopes the WAL itself uses; a replica decodes and validates every
//!   record *before* appending, refuses non-contiguous segments, and a torn
//!   or faulted stream just drops the subscription — the replica re-subscribes
//!   from its own durable position and the primary resumes (or re-bootstraps
//!   it from a checkpoint if its position has been rotated away).
//! * **Unacked writes may or may not survive** a primary crash (the record
//!   may have reached zero, some, or all replicas). Clients must treat an
//!   errored write as *indeterminate*, exactly like a local fsync failure.
//!
//! # Stream mechanics
//!
//! A replica sends `Subscribe{seq, offset}` on a plain client connection
//! (`u64::MAX/u64::MAX` requests a checkpoint bootstrap). The primary spawns
//! a sender thread that pushes `WalSegment` frames on that socket — see
//! [`SegmentKind`] for the five kinds — while the connection's reader thread
//! keeps consuming `ReplicaAck` frames. Acks feed the quorum gate for sync
//! mode and the lag figures reported by `ReplStatus`.

use crate::protocol::{
    decode_response, encode_request, encode_response, write_frame, ErrorCode, ReplRole,
    ReplStatusBody, ReplicaLag, Request, Response, SegmentKind,
};
use crate::server::{Conn, FrameBuffer, State};
use certus_data::wal::{ReplPosition, WalChunk};
use certus_obs::failpoint::{apply_delay, failpoints, FailAction};
use certus_obs::metrics::registry;
use certus_obs::names;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Failpoint checked by a primary before shipping each `Records` segment.
/// `Error` severs the subscriber's socket; `Torn(n)` writes only the first
/// `n` bytes of the frame and then severs it, leaving a torn segment on the
/// wire for the replica's framing layer to reject.
pub const FP_REPL_SEND: &str = "repl.send";
/// Failpoint checked by a replica before applying a received `Records`
/// segment: the apply fails, the stream drops, and the replica re-subscribes
/// from its durable position.
pub const FP_REPL_APPLY: &str = "repl.apply";

/// Replication mode a primary runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplMode {
    /// Writes are acknowledged after the local fsync; per-replica lag is
    /// tracked and reported but never waited on.
    Async,
    /// A write is acknowledged only after `quorum` replicas acked (applied
    /// and fsync'd) its record.
    Sync {
        /// Replica acks required before a write acks. `0` degenerates to
        /// [`ReplMode::Async`].
        quorum: usize,
    },
}

/// Replication configuration for one node; install it via
/// `ServerConfig::replication`. Requires `ServerConfig::data_dir` on both
/// ends: replication ships the durable log, so there must be one.
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// `Some(addr)` starts this node as a replica applying from that
    /// primary; `None` starts it as a primary.
    pub primary: Option<String>,
    /// Mode used while this node is primary — from the start, or after a
    /// `Promote`.
    pub mode: ReplMode,
    /// Sync mode: how long an insert waits for its quorum before failing
    /// with an "acked on replicas: unknown" error.
    pub ack_timeout_ms: u64,
    /// Replica: pause between subscription attempts after a stream fault or
    /// a clean close.
    pub reconnect_ms: u64,
    /// Primary: target payload size of one `Records` segment (always at
    /// least one whole record).
    pub max_segment_bytes: usize,
    /// Term a fresh primary starts at; promotions bump past the highest
    /// term observed on the stream.
    pub initial_term: u64,
}

impl ReplicationConfig {
    fn base() -> ReplicationConfig {
        ReplicationConfig {
            primary: None,
            mode: ReplMode::Async,
            ack_timeout_ms: 5_000,
            reconnect_ms: 50,
            max_segment_bytes: 1 << 20,
            initial_term: 1,
        }
    }

    /// A primary in the given mode.
    pub fn primary(mode: ReplMode) -> ReplicationConfig {
        ReplicationConfig { mode, ..ReplicationConfig::base() }
    }

    /// A replica of `primary`, which will run in `mode` if promoted.
    pub fn replica(primary: impl Into<String>, mode: ReplMode) -> ReplicationConfig {
        ReplicationConfig { primary: Some(primary.into()), mode, ..ReplicationConfig::base() }
    }
}

/// One live subscriber, tracked by the hub on the primary.
struct Peer {
    addr: String,
    /// Highest position shipped to this peer.
    sent: ReplPosition,
    /// Highest position the peer acked (applied + fsync'd on its side).
    acked: ReplPosition,
    /// Cleared by the reader when the subscriber's connection dies; the
    /// sender thread exits on it and quorum counting skips dead peers.
    alive: Arc<AtomicBool>,
}

struct Hub {
    next_id: u64,
    peers: HashMap<u64, Peer>,
    /// Highest locally durable position, published by the insert path so
    /// parked sender threads wake without polling the store.
    durable: ReplPosition,
}

/// Outcome of [`ReplState::begin_promote`].
pub(crate) enum Promotion {
    /// Already writable — promote is idempotent.
    AlreadyPrimary,
    /// The apply loop has been sealed; wait for it to stop, then call
    /// [`ReplState::complete_promote`].
    Sealed,
}

/// Per-server replication state: role, term, and the subscriber hub.
/// Present on every server (a standalone node is a primary with no
/// subscribers) so the request paths need no special-casing.
pub(crate) struct ReplState {
    config: Option<ReplicationConfig>,
    term: AtomicU64,
    /// `Some(primary addr)` while this node is an un-promoted replica —
    /// the address carried by `NotPrimary` refusals.
    replica_of: Mutex<Option<String>>,
    /// Set by `Promote`: the apply loop must stop before the node turns
    /// writable, so no shipped record lands after the promotion ack.
    sealed: AtomicBool,
    /// The replica apply loop is not running (trivially true on primaries).
    apply_stopped: AtomicBool,
    /// Whether this replica has synced (bootstrapped or position-subscribed)
    /// at least once this process; a fresh process always bootstraps.
    synced: AtomicBool,
    hub: Mutex<Hub>,
    cv: Condvar,
}

impl ReplState {
    pub(crate) fn new(config: Option<ReplicationConfig>) -> ReplState {
        let is_replica = config.as_ref().is_some_and(|c| c.primary.is_some());
        let term = config.as_ref().map(|c| c.initial_term).unwrap_or(1);
        ReplState {
            replica_of: Mutex::new(config.as_ref().and_then(|c| c.primary.clone())),
            config,
            term: AtomicU64::new(term),
            sealed: AtomicBool::new(false),
            apply_stopped: AtomicBool::new(!is_replica),
            synced: AtomicBool::new(false),
            hub: Mutex::new(Hub {
                next_id: 1,
                peers: HashMap::new(),
                durable: ReplPosition::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Whether this node was configured as a replica (promoted or not);
    /// used at startup to decide whether to run the apply loop.
    pub(crate) fn starts_as_replica(&self) -> bool {
        self.config.as_ref().is_some_and(|c| c.primary.is_some())
    }

    /// `Some(primary addr)` when this node currently refuses writes.
    pub(crate) fn write_refusal(&self) -> Option<String> {
        self.replica_of.lock().expect("replication role poisoned").clone()
    }

    pub(crate) fn term(&self) -> u64 {
        self.term.load(Ordering::Acquire)
    }

    /// Fold a term seen on the wire into ours (terms only move forward).
    pub(crate) fn observe_term(&self, term: u64) {
        self.term.fetch_max(term, Ordering::AcqRel);
    }

    pub(crate) fn sealed(&self) -> bool {
        self.sealed.load(Ordering::Acquire)
    }

    pub(crate) fn apply_stopped(&self) -> bool {
        self.apply_stopped.load(Ordering::Acquire)
    }

    fn mark_apply_stopped(&self) {
        self.apply_stopped.store(true, Ordering::Release);
    }

    fn synced(&self) -> bool {
        self.synced.load(Ordering::Acquire)
    }

    fn mark_synced(&self) {
        self.synced.store(true, Ordering::Release);
    }

    /// First half of a promotion: seal the apply loop. The caller must wait
    /// for [`ReplState::apply_stopped`] before completing.
    pub(crate) fn begin_promote(&self) -> Promotion {
        if self.replica_of.lock().expect("replication role poisoned").is_none() {
            return Promotion::AlreadyPrimary;
        }
        self.sealed.store(true, Ordering::Release);
        Promotion::Sealed
    }

    /// Second half of a promotion: turn writable and bump the term past
    /// everything observed on the stream. Idempotent under races.
    pub(crate) fn complete_promote(&self) -> u64 {
        let mut role = self.replica_of.lock().expect("replication role poisoned");
        if role.is_none() {
            return self.term();
        }
        *role = None;
        registry().counter(names::REPL_PROMOTIONS).incr();
        self.term.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Sync-mode quorum gate for the insert path: `Some((quorum, timeout))`
    /// when this node is a primary running [`ReplMode::Sync`].
    pub(crate) fn sync_quorum(&self) -> Option<(usize, Duration)> {
        let cfg = self.config.as_ref()?;
        if self.write_refusal().is_some() {
            return None;
        }
        match cfg.mode {
            ReplMode::Sync { quorum } if quorum > 0 => {
                Some((quorum, Duration::from_millis(cfg.ack_timeout_ms.max(1))))
            }
            _ => None,
        }
    }

    fn max_segment_bytes(&self) -> usize {
        self.config.as_ref().map(|c| c.max_segment_bytes).unwrap_or(1 << 20).max(1)
    }

    fn reconnect_delay(&self) -> Duration {
        Duration::from_millis(self.config.as_ref().map(|c| c.reconnect_ms).unwrap_or(50).max(1))
    }

    fn register_peer(&self, addr: String) -> (u64, Arc<AtomicBool>) {
        let alive = Arc::new(AtomicBool::new(true));
        let mut hub = self.hub.lock().expect("replication hub poisoned");
        let id = hub.next_id;
        hub.next_id += 1;
        hub.peers.insert(
            id,
            Peer {
                addr,
                sent: ReplPosition::default(),
                acked: ReplPosition::default(),
                alive: Arc::clone(&alive),
            },
        );
        (id, alive)
    }

    fn unregister_peer(&self, id: u64) {
        let mut hub = self.hub.lock().expect("replication hub poisoned");
        hub.peers.remove(&id);
        registry().gauge(names::REPL_LAG_BYTES).set(max_lag(&hub));
        self.cv.notify_all();
    }

    fn record_sent(&self, id: u64, pos: ReplPosition) {
        let mut hub = self.hub.lock().expect("replication hub poisoned");
        if let Some(peer) = hub.peers.get_mut(&id) {
            peer.sent = pos;
        }
    }

    /// Record a subscriber ack; wakes sync-mode inserts parked on the quorum.
    pub(crate) fn record_ack(&self, id: u64, pos: ReplPosition) {
        let mut hub = self.hub.lock().expect("replication hub poisoned");
        if let Some(peer) = hub.peers.get_mut(&id) {
            peer.acked = peer.acked.max(pos);
        }
        registry().counter(names::REPL_ACKS).incr();
        registry().gauge(names::REPL_LAG_BYTES).set(max_lag(&hub));
        self.cv.notify_all();
    }

    /// Publish a new durable position (insert path); wakes parked senders.
    pub(crate) fn publish(&self, pos: ReplPosition) {
        let mut hub = self.hub.lock().expect("replication hub poisoned");
        hub.durable = hub.durable.max(pos);
        self.cv.notify_all();
    }

    /// Park a sender that is up to date, until something newer than `past`
    /// is published (or the timeout lapses — rotations don't publish, so
    /// senders re-check the store on a timer regardless).
    fn wait_for_publish(&self, past: ReplPosition, timeout: Duration) {
        let hub = self.hub.lock().expect("replication hub poisoned");
        if hub.durable > past {
            return;
        }
        let _ = self.cv.wait_timeout(hub, timeout).expect("replication hub poisoned");
    }

    /// Block until `quorum` live subscribers acked `pos`, or the deadline
    /// lapses. `true` means the quorum was reached.
    pub(crate) fn wait_quorum(&self, pos: ReplPosition, quorum: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut hub = self.hub.lock().expect("replication hub poisoned");
        loop {
            let acked = hub
                .peers
                .values()
                .filter(|p| p.alive.load(Ordering::Acquire) && p.acked >= pos)
                .count();
            if acked >= quorum {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (h, _) =
                self.cv.wait_timeout(hub, deadline - now).expect("replication hub poisoned");
            hub = h;
        }
    }

    /// Wake everything parked on the hub (teardown).
    pub(crate) fn wake_all(&self) {
        self.cv.notify_all();
    }

    /// Build the wire status body; `pos` is the node's durable position.
    pub(crate) fn status(&self, pos: ReplPosition) -> ReplStatusBody {
        let primary_addr = self.write_refusal();
        let role = if primary_addr.is_some() { ReplRole::Replica } else { ReplRole::Primary };
        let (mode, quorum) = match self.config.as_ref().map(|c| c.mode) {
            None => (0, 0),
            Some(ReplMode::Async) => (1, 0),
            Some(ReplMode::Sync { quorum }) => (2, quorum as u32),
        };
        let hub = self.hub.lock().expect("replication hub poisoned");
        let replicas = hub
            .peers
            .values()
            .filter(|p| p.alive.load(Ordering::Acquire))
            .map(|p| ReplicaLag {
                addr: p.addr.clone(),
                acked_seq: p.acked.seq,
                acked_offset: p.acked.offset,
                lag_bytes: lag_bytes(pos, p.acked),
            })
            .collect();
        ReplStatusBody {
            role,
            term: self.term(),
            seq: pos.seq,
            offset: pos.offset,
            mode,
            quorum,
            primary_addr,
            replicas,
        }
    }
}

/// Bytes of `durable` the peer at `acked` has not confirmed. Across a
/// rotation the exact byte count is unknowable (the old generation is
/// gone), so the whole live WAL is owed.
fn lag_bytes(durable: ReplPosition, acked: ReplPosition) -> u64 {
    if acked.seq == durable.seq {
        durable.offset.saturating_sub(acked.offset)
    } else if acked.seq > durable.seq {
        0
    } else {
        durable.offset
    }
}

fn max_lag(hub: &Hub) -> u64 {
    hub.peers
        .values()
        .filter(|p| p.alive.load(Ordering::Acquire))
        .map(|p| lag_bytes(hub.durable, p.acked))
        .max()
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Primary side: per-subscriber sender threads.
// ---------------------------------------------------------------------------

/// A live subscription owned by the connection's reader thread: the sender
/// thread pushing segments plus the hub registration to clean up.
pub(crate) struct Subscription {
    pub(crate) peer_id: u64,
    alive: Arc<AtomicBool>,
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Subscription {
    /// Whether the sender thread has exited (drain complete or stream dead).
    pub(crate) fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Stop the sender, join it, and drop the hub registration.
    pub(crate) fn finish(mut self, state: &State) {
        self.alive.store(false, Ordering::Release);
        state.repl.wake_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        state.repl.unregister_peer(self.peer_id);
    }
}

/// Register `peer_addr` with the hub and spawn the sender thread that
/// streams segments from `from` over `conn`.
pub(crate) fn spawn_sender(
    state: &Arc<State>,
    conn: &Arc<Conn>,
    request_id: u64,
    from: ReplPosition,
    peer_addr: String,
) -> Subscription {
    let (peer_id, alive) = state.repl.register_peer(peer_addr);
    let done = Arc::new(AtomicBool::new(false));
    let handle = {
        let state = Arc::clone(state);
        let conn = Arc::clone(conn);
        let alive = Arc::clone(&alive);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            sender_loop(&state, &conn, request_id, peer_id, &alive, from);
            done.store(true, Ordering::Release);
        })
    };
    Subscription { peer_id, alive, done, handle: Some(handle) }
}

/// Sever the subscriber's socket (both halves); its reader sees EOF and the
/// replica re-subscribes.
fn sever(conn: &Conn) {
    if let Ok(w) = conn.writer.lock() {
        let _ = w.shutdown(Shutdown::Both);
    }
}

fn send_segment(
    conn: &Conn,
    request_id: u64,
    term: u64,
    kind: SegmentKind,
    seq: u64,
    offset: u64,
    bytes: Vec<u8>,
) -> bool {
    let n = bytes.len() as u64;
    let ok = conn.send(request_id, &Response::WalSegment { term, kind, seq, offset, bytes });
    if ok {
        let reg = registry();
        reg.counter(names::REPL_SEGMENTS_SENT).incr();
        reg.counter(names::REPL_SEGMENT_BYTES).add(n);
    }
    ok
}

/// Re-sync a subscriber from the current checkpoint: full state transfer,
/// used for fresh replicas and for positions rotated out from under them.
fn bootstrap_subscriber(
    state: &State,
    conn: &Conn,
    request_id: u64,
    peer_id: u64,
    at: &mut ReplPosition,
) -> bool {
    let durable = match &state.durable {
        Some(d) => d,
        None => return false,
    };
    let Ok((seq, bytes)) = durable.checkpoint_data() else {
        return false;
    };
    if !send_segment(conn, request_id, state.repl.term(), SegmentKind::Checkpoint, seq, 0, bytes) {
        return false;
    }
    *at = ReplPosition { seq, offset: 0 };
    state.repl.record_sent(peer_id, *at);
    true
}

/// The per-subscriber sender: stream segments from `from` until the
/// subscriber dies or the server drains for shutdown.
fn sender_loop(
    state: &Arc<State>,
    conn: &Arc<Conn>,
    request_id: u64,
    peer_id: u64,
    alive: &AtomicBool,
    from: ReplPosition,
) {
    let repl = &state.repl;
    let durable = match &state.durable {
        Some(d) => Arc::clone(d),
        None => return,
    };
    let max_seg = repl.max_segment_bytes();
    let poll = Duration::from_millis(state.config.poll_interval_ms.clamp(1, 50));
    // Confirm the stream with our position and term before any data flows.
    let pos = durable.position();
    if !send_segment(
        conn,
        request_id,
        repl.term(),
        SegmentKind::Heartbeat,
        pos.seq,
        pos.offset,
        Vec::new(),
    ) {
        sever(conn);
        return;
    }
    let mut at = from;
    loop {
        if !alive.load(Ordering::Acquire) {
            return;
        }
        match durable.read_chunk(at, max_seg) {
            Ok(WalChunk::Records(bytes)) => {
                match apply_delay(failpoints().check(FP_REPL_SEND)) {
                    FailAction::Off => {}
                    FailAction::Error => {
                        sever(conn);
                        return;
                    }
                    FailAction::Torn(keep) => {
                        // Emit a torn frame: a prefix of the real segment,
                        // then a dead socket. The replica's framing layer
                        // must reject it and re-subscribe cleanly.
                        let seg = Response::WalSegment {
                            term: repl.term(),
                            kind: SegmentKind::Records,
                            seq: at.seq,
                            offset: at.offset,
                            bytes,
                        };
                        let payload = encode_response(request_id, &seg);
                        let mut framed = Vec::new();
                        let _ = write_frame(&mut framed, &payload);
                        let keep = keep.min(framed.len());
                        if let Ok(mut w) = conn.writer.lock() {
                            let _ = w.write_all(&framed[..keep]);
                        }
                        sever(conn);
                        return;
                    }
                    FailAction::SlowMs(_) => unreachable!("apply_delay resolves slow actions"),
                }
                let n = bytes.len() as u64;
                if !send_segment(
                    conn,
                    request_id,
                    repl.term(),
                    SegmentKind::Records,
                    at.seq,
                    at.offset,
                    bytes,
                ) {
                    sever(conn);
                    return;
                }
                at.offset += n;
                repl.record_sent(peer_id, at);
            }
            Ok(WalChunk::UpToDate) => {
                if state.shutting_down() {
                    // Drained: everything durable has been shipped. Close
                    // the stream cleanly so the replica resumes from this
                    // exact position after our restart — no re-bootstrap.
                    let _ = send_segment(
                        conn,
                        request_id,
                        repl.term(),
                        SegmentKind::Close,
                        at.seq,
                        at.offset,
                        Vec::new(),
                    );
                    return;
                }
                repl.wait_for_publish(at, poll);
            }
            Ok(WalChunk::Rotated) => match durable.last_rotation() {
                // The subscriber stands exactly where the last fold retired
                // the old generation: tell it to fold its own snapshot.
                Some((retired, new_seq)) if retired == at => {
                    if !send_segment(
                        conn,
                        request_id,
                        repl.term(),
                        SegmentKind::Rotate,
                        new_seq,
                        0,
                        Vec::new(),
                    ) {
                        sever(conn);
                        return;
                    }
                    at = ReplPosition { seq: new_seq, offset: 0 };
                    repl.record_sent(peer_id, at);
                }
                _ => {
                    if !bootstrap_subscriber(state, conn, request_id, peer_id, &mut at) {
                        sever(conn);
                        return;
                    }
                }
            },
            // Off the durable log entirely — a fresh replica asking for a
            // bootstrap (`u64::MAX`) or one that diverged: full re-sync.
            Err(_) => {
                if !bootstrap_subscriber(state, conn, request_id, peer_id, &mut at) {
                    sever(conn);
                    return;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Replica side: the apply loop.
// ---------------------------------------------------------------------------

fn send_request(stream: &mut TcpStream, request_id: u64, req: &Request) -> Result<(), String> {
    let payload = encode_request(request_id, req);
    write_frame(stream, &payload).map_err(|e| e.to_string())
}

/// The replica's apply loop: subscribe to the primary, apply segments,
/// ack, and re-subscribe after any fault — until shutdown or promotion.
pub(crate) fn replica_loop(state: &Arc<State>) {
    let repl = &state.repl;
    while !state.shutting_down() && !repl.sealed() {
        let outcome = run_subscription(state);
        if state.shutting_down() || repl.sealed() {
            break;
        }
        if outcome.is_err() {
            registry().counter(names::REPL_RESUBSCRIBES).incr();
        }
        thread::sleep(repl.reconnect_delay());
    }
    repl.mark_apply_stopped();
}

/// One subscription: connect, stream, apply. `Ok` is a clean close (the
/// primary drained for shutdown); `Err` is any fault.
fn run_subscription(state: &Arc<State>) -> Result<(), String> {
    let repl = &state.repl;
    let durable = match &state.durable {
        Some(d) => Arc::clone(d),
        None => return Err("replication requires a data_dir".into()),
    };
    let primary = repl.write_refusal().ok_or("no primary configured")?;
    let mut stream = TcpStream::connect(&primary).map_err(|e| e.to_string())?;
    let _ = stream.set_nodelay(true);
    let poll = Duration::from_millis(state.config.poll_interval_ms.clamp(1, 50));
    let _ = stream.set_read_timeout(Some(poll));
    // A fresh process always bootstraps (its local state may predate the
    // primary's); afterwards it resumes from its own durable position.
    let from = if repl.synced() {
        durable.position()
    } else {
        ReplPosition { seq: u64::MAX, offset: u64::MAX }
    };
    send_request(&mut stream, 1, &Request::Subscribe { seq: from.seq, offset: from.offset })?;
    let reg = registry();
    let mut frames = FrameBuffer::new();
    loop {
        if state.shutting_down() || repl.sealed() {
            return Ok(());
        }
        let payload = match frames.fill(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => continue,
            Err(_) => return Err("subscription stream closed".into()),
        };
        let (_, resp) = decode_response(&payload).map_err(|e| e.to_string())?;
        match resp {
            Response::WalSegment { term, kind, seq, offset, bytes } => {
                repl.observe_term(term);
                match kind {
                    SegmentKind::Heartbeat => {}
                    SegmentKind::Close => return Ok(()),
                    SegmentKind::Records => {
                        match apply_delay(failpoints().check(FP_REPL_APPLY)) {
                            FailAction::Off => {}
                            _ => return Err("injected fault at repl.apply".into()),
                        }
                        let pos = durable
                            .apply_records(seq, offset, &bytes)
                            .map_err(|e| e.to_string())?;
                        repl.mark_synced();
                        reg.counter(names::REPL_BATCHES_APPLIED).incr();
                        reg.counter(names::REPL_APPLY_BYTES).add(bytes.len() as u64);
                        send_request(
                            &mut stream,
                            0,
                            &Request::ReplicaAck { seq: pos.seq, offset: pos.offset },
                        )?;
                    }
                    SegmentKind::Checkpoint => {
                        durable.install_checkpoint(seq, &bytes).map_err(|e| e.to_string())?;
                        repl.mark_synced();
                        reg.counter(names::REPL_BOOTSTRAPS).incr();
                        send_request(&mut stream, 0, &Request::ReplicaAck { seq, offset: 0 })?;
                    }
                    SegmentKind::Rotate => {
                        durable.rotate_to(seq).map_err(|e| e.to_string())?;
                        reg.counter(names::REPL_ROTATIONS).incr();
                        send_request(&mut stream, 0, &Request::ReplicaAck { seq, offset: 0 })?;
                    }
                }
            }
            Response::Error { code, message, .. } => {
                return Err(format!("primary refused the subscription ({code:?}): {message}"));
            }
            other => return Err(format!("unexpected frame on subscription stream: {other:?}")),
        }
    }
}

/// The `NotPrimary` refusal for a write (or subscribe) hitting a replica:
/// the message is exactly the primary's address, for redirect-following.
pub(crate) fn not_primary(primary: String) -> Response {
    Response::Error { code: ErrorCode::NotPrimary, message: primary, retry_after_ms: 0 }
}
