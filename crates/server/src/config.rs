//! Server tuning knobs.

use certus_algebra::NullSemantics;

/// Configuration for a [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind. Port 0 picks an ephemeral port; read the actual
    /// address back from [`crate::Server::local_addr`].
    pub addr: String,
    /// Admission control: connections beyond this cap are refused with
    /// [`crate::protocol::ErrorCode::TooManyConnections`].
    pub max_connections: usize,
    /// Admission control: requests beyond this queue depth are shed with
    /// [`crate::protocol::ErrorCode::Overloaded`] instead of building
    /// unbounded backlog.
    pub queue_capacity: usize,
    /// Number of executor threads draining the request queue. Each executes
    /// one request at a time over its own pinned snapshot.
    pub executors: usize,
    /// Intra-query parallelism: worker threads the engine fans out on for a
    /// single request (shared pool across all executors).
    pub engine_threads: usize,
    /// Null-comparison semantics sessions run under.
    pub semantics: NullSemantics,
    /// Capacity of the process-wide shared plan cache.
    pub cache_capacity: usize,
    /// Poll granularity for connection reads and the accept loop, in
    /// milliseconds. Smaller is more responsive to shutdown; larger burns
    /// less idle CPU.
    pub poll_interval_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            queue_capacity: 1024,
            executors: 4,
            engine_threads: 2,
            semantics: NullSemantics::Sql,
            cache_capacity: 128,
            poll_interval_ms: 20,
        }
    }
}
