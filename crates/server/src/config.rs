//! Server tuning knobs.

use crate::replication::ReplicationConfig;
use certus_algebra::NullSemantics;
use std::path::PathBuf;

/// Configuration for a [`crate::Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind. Port 0 picks an ephemeral port; read the actual
    /// address back from [`crate::Server::local_addr`].
    pub addr: String,
    /// Admission control: connections beyond this cap are refused with
    /// [`crate::protocol::ErrorCode::TooManyConnections`].
    pub max_connections: usize,
    /// Admission control: requests beyond this queue depth are shed with
    /// [`crate::protocol::ErrorCode::Overloaded`] instead of building
    /// unbounded backlog.
    pub queue_capacity: usize,
    /// Number of executor threads draining the request queue. Each executes
    /// one request at a time over its own pinned snapshot.
    pub executors: usize,
    /// Intra-query parallelism: worker threads the engine fans out on for a
    /// single request (shared pool across all executors).
    pub engine_threads: usize,
    /// Null-comparison semantics sessions run under.
    pub semantics: NullSemantics,
    /// Capacity of the process-wide shared plan cache.
    pub cache_capacity: usize,
    /// Poll granularity for connection reads and the accept loop, in
    /// milliseconds. Smaller is more responsive to shutdown; larger burns
    /// less idle CPU.
    pub poll_interval_ms: u64,
    /// Close a connection that has sent nothing for this long (and has no
    /// in-flight requests), announcing the close with a clean `Ack` on the
    /// server channel (request id 0) first. `0` disables idle reaping.
    pub idle_timeout_ms: u64,
    /// Write timeout applied to accepted sockets so one stalled peer can
    /// never wedge an executor mid-response. `0` means no timeout.
    pub write_timeout_ms: u64,
    /// Durability: when set, the server opens a
    /// [`certus_data::wal::DurableStore`] in this directory — recovering
    /// any state a previous process left there — and every `Insert` is
    /// WAL-logged and fsync'd *before* it is acknowledged. `None` serves
    /// from memory only (the pre-durability behavior).
    pub data_dir: Option<PathBuf>,
    /// In durable mode, fold the WAL into a fresh full checkpoint after
    /// this many logged records (bounds recovery replay time). `0` never
    /// checkpoints automatically.
    pub checkpoint_every: u64,
    /// WAL-shipping replication (requires [`ServerConfig::data_dir`] —
    /// replication ships the durable log). `None` runs standalone;
    /// [`ReplicationConfig::primary`] / [`ReplicationConfig::replica`]
    /// build the two roles. See the `replication` module docs for the
    /// failover model.
    pub replication: Option<ReplicationConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            queue_capacity: 1024,
            executors: 4,
            engine_threads: 2,
            semantics: NullSemantics::Sql,
            cache_capacity: 128,
            poll_interval_ms: 20,
            idle_timeout_ms: 300_000,
            write_timeout_ms: 10_000,
            data_dir: None,
            checkpoint_every: 1024,
            replication: None,
        }
    }
}
