//! Observability layer for certus: a process-wide [`MetricsRegistry`] of
//! relaxed-atomic counters/gauges/histograms, per-execution operator
//! profiles ([`QueryProfile`]), and estimate-vs-actual plan annotation
//! ([`AnalyzedPlan`]).
//!
//! The crate is std-only and sits at the bottom of the workspace dependency
//! graph so every layer — data substrate, planner, engine, session facade,
//! bench harness — can report through the same substrate without cycles.
//!
//! Three pieces:
//!
//! * [`metrics`] — named process-wide counters ("how many plan-cache hits
//!   since startup?") with a snapshot/delta API for tests and benches.
//! * [`profile`] — a per-execution tree of operator actuals (rows, batches,
//!   wall time, vectorized-vs-row-fallback, hash build/probe stats, morsel
//!   distribution) collected while a compiled plan runs.
//! * [`analyzed`] — the `EXPLAIN ANALYZE` product: cost-model estimates and
//!   measured actuals side by side for every plan node, with text and JSON
//!   renderers.
//!
//! Plus [`failpoint`] — deterministic fault injection for crash-safety
//! testing: named points production code checks at fault-prone boundaries,
//! armed by tests or `CERTUS_FAILPOINTS`, costing one relaxed atomic load
//! when disarmed.
//!
//! ```
//! use certus_obs::metrics::registry;
//!
//! let c = registry().counter("doc.example.events");
//! let before = registry().snapshot();
//! c.incr();
//! let delta = registry().snapshot().delta_since(&before);
//! assert_eq!(delta.counter("doc.example.events"), 1);
//! ```

pub mod analyzed;
pub mod failpoint;
pub mod json;
pub mod metrics;
pub mod names;
pub mod profile;
pub mod time;

pub use analyzed::AnalyzedPlan;
pub use failpoint::{failpoints, FailAction, FailpointRegistry};
pub use metrics::{registry, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use profile::{NodeStats, ProfNode, QueryProfile, StepProfile};
pub use time::Timer;
