//! Feature-gated monotonic timing. With the default `timing` feature a
//! [`Timer`] wraps [`std::time::Instant`]; without it every timer is a
//! zero-sized no-op and `elapsed_ns` is constant 0, so instrumented call
//! sites compile down to nothing on builds that only want row counters.

/// A monotonic stopwatch started at construction.
///
/// ```
/// let t = certus_obs::Timer::start();
/// let _ns = t.elapsed_ns(); // 0 when the `timing` feature is disabled
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    #[cfg(feature = "timing")]
    start: std::time::Instant,
}

impl Timer {
    /// Start the stopwatch.
    #[inline]
    pub fn start() -> Timer {
        Timer {
            #[cfg(feature = "timing")]
            start: std::time::Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Timer::start`], saturated to `u64`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "timing")]
        {
            let n = self.start.elapsed().as_nanos();
            if n > u64::MAX as u128 {
                u64::MAX
            } else {
                n as u64
            }
        }
        #[cfg(not(feature = "timing"))]
        {
            0
        }
    }
}

/// Render a nanosecond quantity human-readably (`412ns`, `3.1µs`, `12.4ms`,
/// `1.07s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotone() {
        let t = Timer::start();
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(412), "412ns");
        assert_eq!(fmt_ns(3_100), "3.1µs");
        assert_eq!(fmt_ns(12_400_000), "12.4ms");
        assert_eq!(fmt_ns(1_070_000_000), "1.07s");
    }
}
