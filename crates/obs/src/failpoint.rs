//! Deterministic fault injection: named failpoints that production code
//! checks at fault-prone boundaries (WAL appends, fsyncs, checkpoint
//! writes, socket I/O) and tests or the chaos harness arm to force the
//! failure modes a crash-safe system must survive.
//!
//! Design constraints, in order:
//!
//! 1. **Zero overhead when disarmed.** A check at a hot call site is a
//!    single relaxed atomic load when no failpoint is armed anywhere in the
//!    process — no lock, no map lookup, no allocation. The default path
//!    through the storage layer pays nothing for the harness's existence.
//! 2. **Deterministic.** A failpoint fires on exact hit counts (`after`
//!    skipped hits, then `times` firings), never on wall time or
//!    randomness. Chaos runs draw those counts from a seeded RNG in the
//!    *harness*, so a seed reproduces the exact crash schedule while this
//!    module stays clock- and rng-free.
//! 3. **Env-selectable.** `CERTUS_FAILPOINTS=wal.append=torn@5:after=3`
//!    arms points without touching code, so CI can run the same binary with
//!    and without faults.
//!
//! ```
//! use certus_obs::failpoint::{failpoints, FailAction};
//!
//! failpoints().arm("doc.example", FailAction::Error, 1, 1);
//! assert_eq!(failpoints().check("doc.example"), FailAction::Off); // skipped
//! assert_eq!(failpoints().check("doc.example"), FailAction::Error); // fires
//! assert_eq!(failpoints().check("doc.example"), FailAction::Off); // spent
//! failpoints().disarm_all();
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// What an armed failpoint makes the call site do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Not armed (or armed but outside its firing window): proceed normally.
    Off,
    /// Fail the operation with an injected error, leaving no partial state
    /// behind (models an fsync failure or a full disk detected up front).
    Error,
    /// Write only the first `n` bytes of the payload, then fail — the torn
    /// prefix *stays behind*, modeling a crash mid-write. Recovery must
    /// truncate it, never replay it.
    Torn(usize),
    /// Sleep this many milliseconds, then proceed — models a slow disk or a
    /// stalled socket without failing the operation.
    SlowMs(u64),
}

struct Failpoint {
    action: FailAction,
    /// Hits to pass through before the point starts firing.
    after: u64,
    /// Firings before the point disarms itself (`u64::MAX` = forever).
    times: u64,
    /// Hits observed so far (fired or not).
    hits: u64,
    /// Firings so far.
    fired: u64,
}

/// The process-wide registry of named failpoints. Obtain it with
/// [`failpoints`]; production code calls [`FailpointRegistry::check`],
/// harnesses call [`FailpointRegistry::arm`] / `disarm*`.
pub struct FailpointRegistry {
    /// Fast-path gate: `false` means no point is armed and [`check`] returns
    /// without taking the lock. Maintained by every arm/disarm.
    ///
    /// [`check`]: FailpointRegistry::check
    armed: AtomicBool,
    points: Mutex<HashMap<String, Failpoint>>,
}

impl FailpointRegistry {
    fn new() -> Self {
        let reg =
            FailpointRegistry { armed: AtomicBool::new(false), points: Mutex::new(HashMap::new()) };
        if let Ok(spec) = std::env::var("CERTUS_FAILPOINTS") {
            reg.arm_from_spec(&spec);
        }
        reg
    }

    /// Arm `name`: pass `after` hits through untouched, then return `action`
    /// from [`check`](FailpointRegistry::check) for the next `times` hits,
    /// then disarm. Re-arming an existing name resets its counters.
    pub fn arm(&self, name: &str, action: FailAction, after: u64, times: u64) {
        let mut points = self.points.lock().expect("failpoint registry poisoned");
        points.insert(name.to_string(), Failpoint { action, after, times, hits: 0, fired: 0 });
        self.armed.store(true, Ordering::Release);
    }

    /// Disarm one failpoint (its hit history is forgotten).
    pub fn disarm(&self, name: &str) {
        let mut points = self.points.lock().expect("failpoint registry poisoned");
        points.remove(name);
        if points.is_empty() {
            self.armed.store(false, Ordering::Release);
        }
    }

    /// Disarm everything — the state tests should restore on exit.
    pub fn disarm_all(&self) {
        let mut points = self.points.lock().expect("failpoint registry poisoned");
        points.clear();
        self.armed.store(false, Ordering::Release);
    }

    /// Whether any failpoint is currently armed (the fast-path gate).
    pub fn any_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// The call-site hook: what should this hit of `name` do? With nothing
    /// armed anywhere this is one relaxed atomic load.
    pub fn check(&self, name: &str) -> FailAction {
        if !self.armed.load(Ordering::Relaxed) {
            return FailAction::Off;
        }
        let mut points = self.points.lock().expect("failpoint registry poisoned");
        let Some(point) = points.get_mut(name) else {
            return FailAction::Off;
        };
        point.hits += 1;
        if point.hits <= point.after || point.fired >= point.times {
            return FailAction::Off;
        }
        point.fired += 1;
        point.action
    }

    /// Total hits `name` has observed (fired or not); 0 when never armed.
    pub fn hits(&self, name: &str) -> u64 {
        self.points
            .lock()
            .expect("failpoint registry poisoned")
            .get(name)
            .map(|p| p.hits)
            .unwrap_or(0)
    }

    /// Arm failpoints from a spec string (the `CERTUS_FAILPOINTS` grammar):
    /// `;`-separated entries of `name=action[:after=N][:times=M]`, where
    /// action is `error`, `torn@BYTES`, or `slow@MS`. Unparseable entries
    /// are ignored (fault injection must never take down a production
    /// process over a typo). Returns how many entries were armed.
    pub fn arm_from_spec(&self, spec: &str) -> usize {
        let mut armed = 0;
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((name, rest)) = entry.split_once('=') else { continue };
            let mut parts = rest.split(':');
            let Some(action) = parts.next().and_then(parse_action) else { continue };
            let (mut after, mut times) = (0u64, u64::MAX);
            for part in parts {
                if let Some(n) = part.strip_prefix("after=").and_then(|v| v.parse().ok()) {
                    after = n;
                } else if let Some(n) = part.strip_prefix("times=").and_then(|v| v.parse().ok()) {
                    times = n;
                }
            }
            self.arm(name.trim(), action, after, times);
            armed += 1;
        }
        armed
    }
}

fn parse_action(s: &str) -> Option<FailAction> {
    let s = s.trim();
    if s == "error" {
        return Some(FailAction::Error);
    }
    if let Some(n) = s.strip_prefix("torn@").and_then(|v| v.parse().ok()) {
        return Some(FailAction::Torn(n));
    }
    if let Some(ms) = s.strip_prefix("slow@").and_then(|v| v.parse().ok()) {
        return Some(FailAction::SlowMs(ms));
    }
    None
}

/// The process-wide failpoint registry, created on first use (arming any
/// points named in `CERTUS_FAILPOINTS` at that moment).
pub fn failpoints() -> &'static FailpointRegistry {
    static REGISTRY: OnceLock<FailpointRegistry> = OnceLock::new();
    REGISTRY.get_or_init(FailpointRegistry::new)
}

/// Honor a [`FailAction::SlowMs`] by sleeping; every other action is
/// returned for the call site to interpret (only it knows what "torn" or
/// "error" means for its operation).
pub fn apply_delay(action: FailAction) -> FailAction {
    if let FailAction::SlowMs(ms) = action {
        std::thread::sleep(std::time::Duration::from_millis(ms));
        return FailAction::Off;
    }
    action
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global registry is process-wide shared state; each test uses its
    // own uniquely named points and disarms them on exit so parallel test
    // threads never observe each other.

    #[test]
    fn disarmed_points_are_off_and_cheap() {
        let reg =
            FailpointRegistry { armed: AtomicBool::new(false), points: Mutex::new(HashMap::new()) };
        assert!(!reg.any_armed());
        assert_eq!(reg.check("fp.test.unarmed"), FailAction::Off);
        assert_eq!(reg.hits("fp.test.unarmed"), 0);
    }

    #[test]
    fn after_and_times_window_the_firings() {
        let reg =
            FailpointRegistry { armed: AtomicBool::new(false), points: Mutex::new(HashMap::new()) };
        reg.arm("fp.test.window", FailAction::Error, 2, 2);
        let got: Vec<FailAction> = (0..6).map(|_| reg.check("fp.test.window")).collect();
        assert_eq!(
            got,
            vec![
                FailAction::Off,
                FailAction::Off,
                FailAction::Error,
                FailAction::Error,
                FailAction::Off,
                FailAction::Off,
            ]
        );
        assert_eq!(reg.hits("fp.test.window"), 6);
    }

    #[test]
    fn disarm_clears_the_gate_when_empty() {
        let reg =
            FailpointRegistry { armed: AtomicBool::new(false), points: Mutex::new(HashMap::new()) };
        reg.arm("fp.test.gate", FailAction::Error, 0, 1);
        assert!(reg.any_armed());
        reg.disarm("fp.test.gate");
        assert!(!reg.any_armed());
    }

    #[test]
    fn spec_parsing_arms_and_ignores_garbage() {
        let reg =
            FailpointRegistry { armed: AtomicBool::new(false), points: Mutex::new(HashMap::new()) };
        let armed = reg.arm_from_spec(
            "wal.append=torn@5:after=3; wal.fsync=error:times=1; junk; also=nonsense@x",
        );
        assert_eq!(armed, 2);
        for _ in 0..3 {
            assert_eq!(reg.check("wal.append"), FailAction::Off);
        }
        assert_eq!(reg.check("wal.append"), FailAction::Torn(5));
        assert_eq!(reg.check("wal.fsync"), FailAction::Error);
        assert_eq!(reg.check("wal.fsync"), FailAction::Off, "times=1 is spent");
    }

    #[test]
    fn slow_actions_resolve_through_apply_delay() {
        assert_eq!(apply_delay(FailAction::SlowMs(0)), FailAction::Off);
        assert_eq!(apply_delay(FailAction::Error), FailAction::Error);
        assert_eq!(apply_delay(FailAction::Torn(3)), FailAction::Torn(3));
    }
}
