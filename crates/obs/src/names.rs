//! Canonical metric names. Call sites across the workspace register handles
//! by these constants so snapshots, tests and dashboards agree on spelling.

/// Plan-cache lookups that found a cached plan.
pub const PLAN_CACHE_HITS: &str = "plan_cache.hits";
/// Plan-cache lookups that found nothing.
pub const PLAN_CACHE_MISSES: &str = "plan_cache.misses";
/// Plans inserted into the plan cache.
pub const PLAN_CACHE_INSERTIONS: &str = "plan_cache.insertions";
/// Plan-cache entries dropped to make room.
pub const PLAN_CACHE_EVICTIONS: &str = "plan_cache.evictions";
/// Plan-cache entries dropped because their schema epoch went stale.
pub const PLAN_CACHE_INVALIDATIONS: &str = "plan_cache.invalidations";

/// Physical plans lowered to `CompiledPlan` form.
pub const ENGINE_COMPILES: &str = "engine.compiles";
/// Scalar subqueries evaluated while seeding compiled-plan scalar slots.
pub const ENGINE_SUBQUERY_EVALS: &str = "engine.subquery_evals";

/// Column-name resolutions against a schema (data substrate).
pub const DATA_NAME_RESOLUTIONS: &str = "data.name_resolutions";
/// Schema inferences over literal relations (data substrate).
pub const DATA_SCHEMA_INFERENCES: &str = "data.schema_inferences";
/// Intermediate relations materialized by the delegating evaluator.
pub const DATA_PLAN_MATERIALIZATIONS: &str = "data.plan_materializations";

/// Distinct strings currently held by the global interner (gauge).
pub const INTERNER_STRINGS: &str = "interner.strings";

/// Tasks executed by the shared worker pool (workers and helpers alike).
pub const EXEC_TASKS_EXECUTED: &str = "exec.tasks_executed";
/// Pool tasks taken from another worker's deque (work-stealing traffic).
pub const EXEC_TASKS_STOLEN: &str = "exec.tasks_stolen";

/// Prepared-query executions completed by the session facade.
pub const SESSION_EXECUTIONS: &str = "session.executions";
/// Latency histogram (nanoseconds) of prepared-query executions.
pub const SESSION_EXECUTE_NS: &str = "session.execute_ns";

/// Requests completed by the query server (all types, success or error).
pub const SERVER_REQUESTS: &str = "server.requests";
/// Depth of the server's bounded request queue (gauge).
pub const SERVER_QUEUE_DEPTH: &str = "server.queue_depth";
/// Requests shed by admission control (queue full or over connection cap).
pub const SERVER_REJECTED: &str = "server.rejected";
/// Database snapshots pinned by readers since process start.
pub const SERVER_SNAPSHOT_PINS: &str = "server.snapshot_pins";
/// Currently live pinned snapshots (gauge).
pub const SERVER_SNAPSHOT_PINS_LIVE: &str = "server.snapshot_pins_live";
/// Client connections currently open (gauge).
pub const SERVER_CONNECTIONS: &str = "server.connections";
/// Prepared executions that hit `StalePlan` and were re-prepared server-side.
pub const SERVER_STALE_REPLANS: &str = "server.stale_replans";
/// Latency histogram (nanoseconds) of server request handling.
pub const SERVER_REQUEST_NS: &str = "server.request_ns";
/// Idle connections the server closed after `idle_timeout_ms`.
pub const SERVER_IDLE_CLOSED: &str = "server.idle_closed";
/// Requests that failed because their deadline expired (queued or running).
pub const SERVER_DEADLINE_EXCEEDED: &str = "server.deadline_exceeded";

/// Records appended to the write-ahead log.
pub const WAL_APPENDS: &str = "wal.appends";
/// Bytes appended to the write-ahead log (payload + envelope).
pub const WAL_APPEND_BYTES: &str = "wal.append_bytes";
/// `fsync` calls issued by the durability layer (appends and checkpoints).
pub const WAL_FSYNCS: &str = "wal.fsyncs";
/// Full-snapshot checkpoints written.
pub const WAL_CHECKPOINTS: &str = "wal.checkpoints";
/// Crash recoveries performed (checkpoint load + WAL replay).
pub const WAL_RECOVERIES: &str = "wal.recoveries";
/// WAL records replayed during recovery.
pub const WAL_RECOVERED_RECORDS: &str = "wal.recovered_records";
/// Torn or corrupt WAL tails truncated during recovery.
pub const WAL_TORN_TAILS: &str = "wal.torn_tails";
/// Latency histogram (nanoseconds) of durable appends (encode+write+fsync).
pub const WAL_APPEND_NS: &str = "wal.append_ns";

/// Replication segments a primary pushed to subscribers (all kinds:
/// records, checkpoints, rotates, heartbeats, closes).
pub const REPL_SEGMENTS_SENT: &str = "repl.segments_sent";
/// Payload bytes shipped in replication segments.
pub const REPL_SEGMENT_BYTES: &str = "repl.segment_bytes";
/// Replica acknowledgements a primary processed.
pub const REPL_ACKS: &str = "repl.acks";
/// Record batches a replica applied (CRC-checked, fsync'd, published).
pub const REPL_BATCHES_APPLIED: &str = "repl.batches_applied";
/// Record bytes a replica applied.
pub const REPL_APPLY_BYTES: &str = "repl.apply_bytes";
/// Checkpoint bootstraps a replica performed (full state transfer).
pub const REPL_BOOTSTRAPS: &str = "repl.bootstraps";
/// `Rotate` segments a replica followed (folding its WAL in lockstep).
pub const REPL_ROTATIONS: &str = "repl.rotations";
/// Times a replica re-subscribed after a stream fault or clean close.
pub const REPL_RESUBSCRIBES: &str = "repl.resubscribes";
/// Promotions (replica made writable by a `Promote` request).
pub const REPL_PROMOTIONS: &str = "repl.promotions";
/// Unacknowledged durable bytes of the laggiest live subscriber (gauge).
pub const REPL_LAG_BYTES: &str = "repl.lag_bytes";
/// Nanoseconds sync-mode inserts spent waiting for their replica quorum.
pub const REPL_QUORUM_WAIT_NS: &str = "repl.quorum_wait_ns";
/// Sync-mode inserts whose quorum never arrived before the ack timeout.
pub const REPL_QUORUM_TIMEOUTS: &str = "repl.quorum_timeouts";

/// Client-side request retries (overload backoff and timeout resends).
pub const CLIENT_RETRIES: &str = "client.retries";
