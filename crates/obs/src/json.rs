//! Minimal JSON emission helpers. The workspace is offline and std-only, so
//! renderers hand-assemble JSON strings; these helpers keep escaping and
//! float formatting consistent across crates.

/// Escape a string for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a float as a JSON number: finite values print plainly, non-finite
/// values (which JSON cannot carry) degrade to `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` on f64 never prints an exponent for the magnitudes we emit,
        // but make sure integral values stay valid JSON numbers as-is.
        if s == "-0" {
            s = "0".to_string();
        }
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-0.0), "0");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
