//! `EXPLAIN ANALYZE` output: cost-model estimates and measured actuals side
//! by side for every plan node.
//!
//! The session facade zips the planner's static `ExplainPlan` against the
//! engine's [`crate::QueryProfile`] into this tree. Rendering follows the
//! planner's explain format, extended with actual rows, wall time, path
//! tags (`[vec]` / `[row-fallback]`) and an `[est↯act ×N]` marker wherever
//! the cost model's cardinality estimate diverged from reality.

use crate::json;
use crate::time::fmt_ns;
use std::fmt;

/// Estimate-vs-actual ratio at which a node is flagged as diverged. A factor
/// of 4 means the cost model was off by 4× in either direction — enough to
/// change join-order decisions, small enough to catch on modest databases.
pub const DIVERGENCE_FACTOR: f64 = 4.0;

/// Rows below which divergence is not flagged: on tiny intermediates a
/// ratio says nothing (estimating 0.5 rows when 2 show up is factor 4 but
/// planner-irrelevant).
pub const DIVERGENCE_MIN_ROWS: f64 = 4.0;

/// One plan node annotated with both the cost model's estimates and the
/// measured actuals from an instrumented execution.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedPlan {
    /// Operator label, as rendered by the planner's explain.
    pub op: String,
    /// Cost model's cardinality estimate.
    pub rows_est: f64,
    /// Cost model's cost estimate.
    pub cost_est: f64,
    /// Measured output rows.
    pub rows_act: u64,
    /// Measured wall time (inclusive of children), nanoseconds. Zero for
    /// nodes that execute as part of a fused pipeline rather than standalone.
    pub wall_ns: u64,
    /// Path tags: `"vec"`, `"row-fallback"`.
    pub tags: Vec<String>,
    /// Children, mirroring the plan tree.
    pub children: Vec<AnalyzedPlan>,
}

impl AnalyzedPlan {
    /// How far the estimate was from the actual, as a ≥ 1 ratio
    /// (`max(est/act, act/est)`, with both sides clamped away from zero).
    pub fn divergence(&self) -> f64 {
        let est = self.rows_est.max(0.5);
        let act = (self.rows_act as f64).max(0.5);
        (est / act).max(act / est)
    }

    /// Whether this node's estimate diverged enough to flag (see
    /// [`DIVERGENCE_FACTOR`], [`DIVERGENCE_MIN_ROWS`]).
    pub fn diverged(&self) -> bool {
        self.divergence() >= DIVERGENCE_FACTOR
            && self.rows_est.max(self.rows_act as f64) >= DIVERGENCE_MIN_ROWS
    }

    /// Whether any node in the tree is flagged as diverged.
    pub fn any_divergence(&self) -> bool {
        self.diverged() || self.children.iter().any(AnalyzedPlan::any_divergence)
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(AnalyzedPlan::node_count).sum::<usize>()
    }

    /// Every node of the tree, preorder.
    pub fn flatten(&self) -> Vec<&AnalyzedPlan> {
        let mut out = Vec::with_capacity(self.node_count());
        fn walk<'a>(node: &'a AnalyzedPlan, out: &mut Vec<&'a AnalyzedPlan>) {
            out.push(node);
            for c in &node.children {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    fn render(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{}  (rows est≈{:.0} act={}, time={})",
            self.op,
            self.rows_est,
            self.rows_act,
            fmt_ns(self.wall_ns)
        ));
        for tag in &self.tags {
            out.push_str(&format!(" [{tag}]"));
        }
        if self.diverged() {
            out.push_str(&format!(" [est↯act ×{:.0}]", self.divergence()));
        }
        out.push('\n');
        for child in &self.children {
            child.render(depth + 1, out);
        }
    }

    /// Render the annotated tree as JSON.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"op\": \"{}\", \"rows_est\": {}, \"cost_est\": {}, \"rows_act\": {}, \
             \"wall_ns\": {}, \"diverged\": {}",
            json::escape(&self.op),
            json::number(self.rows_est),
            json::number(self.cost_est),
            self.rows_act,
            self.wall_ns,
            self.diverged()
        );
        if !self.tags.is_empty() {
            out.push_str(", \"tags\": [");
            for (i, t) in self.tags.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json::escape(t)));
            }
            out.push(']');
        }
        if !self.children.is_empty() {
            out.push_str(", \"children\": [");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_json());
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for AnalyzedPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(0, &mut out);
        f.write_str(out.trim_end_matches('\n'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(op: &str, est: f64, act: u64) -> AnalyzedPlan {
        AnalyzedPlan {
            op: op.to_string(),
            rows_est: est,
            cost_est: est * 2.0,
            rows_act: act,
            wall_ns: 1_000,
            tags: Vec::new(),
            children: Vec::new(),
        }
    }

    #[test]
    fn divergence_is_symmetric_and_gated() {
        assert!(node("a", 100.0, 10).diverged()); // 10× over
        assert!(node("a", 10.0, 100).diverged()); // 10× under
        assert!(!node("a", 100.0, 80).diverged()); // close enough
        assert!(!node("a", 2.0, 0).diverged()); // tiny rows: gated off
        assert!((node("a", 100.0, 10).divergence() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn any_divergence_searches_the_tree() {
        let mut root = node("join", 50.0, 40);
        root.children.push(node("scan", 1000.0, 10));
        assert!(!root.diverged());
        assert!(root.any_divergence());
        assert_eq!(root.node_count(), 2);
        assert_eq!(root.flatten().len(), 2);
    }

    #[test]
    fn render_shows_estimates_actuals_and_tags() {
        let mut root = node("Filter [p]", 100.0, 7);
        root.tags.push("vec".to_string());
        let text = root.to_string();
        assert!(text.contains("rows est≈100 act=7"));
        assert!(text.contains("[vec]"));
        assert!(text.contains("[est↯act ×14]"));
    }

    #[test]
    fn json_is_well_formed() {
        let mut root = node("join", 50.0, 40);
        root.tags.push("vec".to_string());
        root.children.push(node("scan \"r\"", 1000.0, 10));
        let s = root.to_json();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"scan \\\"r\\\"\""));
        assert!(s.contains("\"diverged\": true"));
        assert!(s.contains("\"tags\": [\"vec\"]"));
    }
}
