//! Per-execution operator profiles.
//!
//! The engine builds a [`ProfNode`] tree mirroring the compiled plan before
//! an instrumented run, threads `&ProfNode` references down its recursion
//! (the nodes are all relaxed atomics, so morsel workers on scoped threads
//! record into the same node without locking), and calls
//! [`ProfNode::finish`] afterwards to freeze the actuals into a plain
//! [`QueryProfile`] value for rendering, testing and estimate-vs-actual
//! annotation.

use crate::json;
use crate::time::fmt_ns;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live per-operator actuals, all relaxed atomics so concurrent morsel
/// workers can record without synchronisation.
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Tuples entering the operator (for pipelines: source cardinality).
    pub rows_in: AtomicU64,
    /// Tuples produced by the operator.
    pub rows_out: AtomicU64,
    /// Batches/morsels processed on chunked paths.
    pub batches: AtomicU64,
    /// Times the operator ran (>1 under re-execution of a cached plan tree).
    pub invocations: AtomicU64,
    /// Wall time spent in the operator **including** its children.
    pub wall_ns: AtomicU64,
    /// Runs that took the vectorized columnar path.
    pub vec_runs: AtomicU64,
    /// Runs that wanted the vectorized path but fell back to row-at-a-time.
    pub row_fallbacks: AtomicU64,
    /// Hash-table build-side rows (joins/semijoins).
    pub build_rows: AtomicU64,
    /// Probe rows that found at least one build match.
    pub probe_hits: AtomicU64,
    /// Probe rows that found no build match.
    pub probe_misses: AtomicU64,
    /// Morsels dispatched on parallel paths.
    pub morsels: AtomicU64,
    /// Worker threads that participated on parallel paths.
    pub workers: AtomicU64,
}

impl NodeStats {
    #[inline]
    fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one invocation producing `rows_out` tuples in `wall_ns`.
    #[inline]
    pub fn record_invocation(&self, rows_out: u64, wall_ns: u64) {
        Self::add(&self.invocations, 1);
        Self::add(&self.rows_out, rows_out);
        Self::add(&self.wall_ns, wall_ns);
    }

    /// Record input cardinality.
    #[inline]
    pub fn record_rows_in(&self, n: u64) {
        Self::add(&self.rows_in, n);
    }

    /// Record batches processed.
    #[inline]
    pub fn record_batches(&self, n: u64) {
        Self::add(&self.batches, n);
    }

    /// Record that the vectorized path ran.
    #[inline]
    pub fn record_vec_run(&self) {
        Self::add(&self.vec_runs, 1);
    }

    /// Record a fallback from the vectorized path to the row path.
    #[inline]
    pub fn record_row_fallback(&self) {
        Self::add(&self.row_fallbacks, 1);
    }

    /// Record hash-table build size.
    #[inline]
    pub fn record_build_rows(&self, n: u64) {
        Self::add(&self.build_rows, n);
    }

    /// Record probe outcomes.
    #[inline]
    pub fn record_probes(&self, hits: u64, misses: u64) {
        Self::add(&self.probe_hits, hits);
        Self::add(&self.probe_misses, misses);
    }

    /// Record a parallel dispatch of `morsels` work items over `workers`
    /// threads.
    #[inline]
    pub fn record_parallel(&self, morsels: u64, workers: u64) {
        Self::add(&self.morsels, morsels);
        Self::add(&self.workers, workers);
    }
}

/// One node of the live profile tree the engine records into. Built by the
/// engine to mirror a compiled plan's structure; see the crate docs.
#[derive(Debug)]
pub struct ProfNode {
    op: String,
    /// The operator's live counters.
    pub stats: NodeStats,
    step_ops: Vec<String>,
    step_rows: Vec<AtomicU64>,
    children: Vec<ProfNode>,
}

impl ProfNode {
    /// A leaf node labelled `op`.
    pub fn new(op: impl Into<String>) -> ProfNode {
        ProfNode::with(op, Vec::new(), Vec::new())
    }

    /// A node labelled `op` with fused pipeline step labels and children.
    pub fn with(op: impl Into<String>, step_ops: Vec<String>, children: Vec<ProfNode>) -> ProfNode {
        let step_rows = step_ops.iter().map(|_| AtomicU64::new(0)).collect();
        ProfNode { op: op.into(), stats: NodeStats::default(), step_ops, step_rows, children }
    }

    /// The operator label.
    pub fn op(&self) -> &str {
        &self.op
    }

    /// Child profile nodes, in plan order.
    pub fn children(&self) -> &[ProfNode] {
        &self.children
    }

    /// Child `i`, if present (instrumentation is defensive: a structure
    /// mismatch drops records rather than panicking mid-query).
    pub fn child(&self, i: usize) -> Option<&ProfNode> {
        self.children.get(i)
    }

    /// Number of fused pipeline steps.
    pub fn step_count(&self) -> usize {
        self.step_ops.len()
    }

    /// Add `n` survivors to fused step `i`'s output count.
    #[inline]
    pub fn add_step_rows(&self, i: usize, n: u64) {
        if let Some(cell) = self.step_rows.get(i) {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Freeze the live counters into a plain snapshot tree.
    pub fn finish(&self) -> QueryProfile {
        let load = |f: &AtomicU64| f.load(Ordering::Relaxed);
        QueryProfile {
            op: self.op.clone(),
            rows_in: load(&self.stats.rows_in),
            rows_out: load(&self.stats.rows_out),
            batches: load(&self.stats.batches),
            invocations: load(&self.stats.invocations),
            wall_ns: load(&self.stats.wall_ns),
            vec_runs: load(&self.stats.vec_runs),
            row_fallbacks: load(&self.stats.row_fallbacks),
            build_rows: load(&self.stats.build_rows),
            probe_hits: load(&self.stats.probe_hits),
            probe_misses: load(&self.stats.probe_misses),
            morsels: load(&self.stats.morsels),
            workers: load(&self.stats.workers),
            steps: self
                .step_ops
                .iter()
                .zip(&self.step_rows)
                .map(|(op, rows)| StepProfile { op: op.clone(), rows_out: load(rows) })
                .collect(),
            children: self.children.iter().map(ProfNode::finish).collect(),
        }
    }
}

/// Actuals for one fused pipeline step (a filter or a projection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepProfile {
    /// Step label (`"filter"` or `"project"`).
    pub op: String,
    /// Tuples surviving this step across all invocations.
    pub rows_out: u64,
}

/// A frozen per-execution operator profile: the same tree shape as the
/// compiled plan, with measured actuals at every node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// Operator label (e.g. `"hash_join"`, `"fused"`, `"scan(r)"`).
    pub op: String,
    /// Tuples entering the operator.
    pub rows_in: u64,
    /// Tuples produced.
    pub rows_out: u64,
    /// Batches/morsels processed.
    pub batches: u64,
    /// Times the operator ran.
    pub invocations: u64,
    /// Wall time including children, in nanoseconds.
    pub wall_ns: u64,
    /// Vectorized-path runs.
    pub vec_runs: u64,
    /// Row-path fallbacks from the vectorized path.
    pub row_fallbacks: u64,
    /// Hash-table build rows.
    pub build_rows: u64,
    /// Probe rows with at least one match.
    pub probe_hits: u64,
    /// Probe rows with no match.
    pub probe_misses: u64,
    /// Morsels dispatched on parallel paths.
    pub morsels: u64,
    /// Worker threads that participated.
    pub workers: u64,
    /// Fused pipeline steps with per-step survivor counts.
    pub steps: Vec<StepProfile>,
    /// Child operators, in plan order.
    pub children: Vec<QueryProfile>,
}

impl QueryProfile {
    /// Wall time spent in this operator alone: its inclusive time minus its
    /// children's (saturating — on parallel paths children overlap the
    /// parent, so the subtraction clamps at zero rather than going negative).
    pub fn self_wall_ns(&self) -> u64 {
        let child_ns: u64 = self.children.iter().map(|c| c.wall_ns).sum();
        self.wall_ns.saturating_sub(child_ns)
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(QueryProfile::node_count).sum::<usize>()
    }

    /// Probe hit rate for hash operators (0 when nothing was probed).
    pub fn probe_hit_rate(&self) -> f64 {
        let total = self.probe_hits + self.probe_misses;
        if total == 0 {
            0.0
        } else {
            self.probe_hits as f64 / total as f64
        }
    }

    /// Every node of the tree, preorder.
    pub fn flatten(&self) -> Vec<&QueryProfile> {
        let mut out = Vec::with_capacity(self.node_count());
        fn walk<'a>(node: &'a QueryProfile, out: &mut Vec<&'a QueryProfile>) {
            out.push(node);
            for c in &node.children {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    fn render(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{}  (rows={}, time={}, self={})",
            self.op,
            self.rows_out,
            fmt_ns(self.wall_ns),
            fmt_ns(self.self_wall_ns())
        ));
        if self.vec_runs > 0 {
            out.push_str(" [vec]");
        }
        if self.row_fallbacks > 0 {
            out.push_str(" [row-fallback]");
        }
        if self.build_rows > 0 || self.probe_hits + self.probe_misses > 0 {
            out.push_str(&format!(
                " [build={}, probe_hit_rate={:.2}]",
                self.build_rows,
                self.probe_hit_rate()
            ));
        }
        if self.workers > 0 {
            out.push_str(&format!(" [morsels={}, workers={}]", self.morsels, self.workers));
        }
        out.push('\n');
        for step in &self.steps {
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(&format!("· {}  (rows={})\n", step.op, step.rows_out));
        }
        for child in &self.children {
            child.render(depth + 1, out);
        }
    }

    /// Render the profile tree as JSON.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"op\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \"batches\": {}, \
             \"invocations\": {}, \"wall_ns\": {}, \"self_ns\": {}, \"vec_runs\": {}, \
             \"row_fallbacks\": {}, \"build_rows\": {}, \"probe_hits\": {}, \
             \"probe_misses\": {}, \"morsels\": {}, \"workers\": {}",
            json::escape(&self.op),
            self.rows_in,
            self.rows_out,
            self.batches,
            self.invocations,
            self.wall_ns,
            self.self_wall_ns(),
            self.vec_runs,
            self.row_fallbacks,
            self.build_rows,
            self.probe_hits,
            self.probe_misses,
            self.morsels,
            self.workers
        );
        if !self.steps.is_empty() {
            out.push_str(", \"steps\": [");
            for (i, s) in self.steps.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"op\": \"{}\", \"rows_out\": {}}}",
                    json::escape(&s.op),
                    s.rows_out
                ));
            }
            out.push(']');
        }
        if !self.children.is_empty() {
            out.push_str(", \"children\": [");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.to_json());
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(0, &mut out);
        f.write_str(out.trim_end_matches('\n'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfNode {
        ProfNode::with(
            "hash_join",
            Vec::new(),
            vec![
                ProfNode::with(
                    "fused",
                    vec!["filter".into(), "project".into()],
                    vec![ProfNode::new("scan(r)")],
                ),
                ProfNode::new("scan(s)"),
            ],
        )
    }

    #[test]
    fn finish_freezes_recorded_counters() {
        let prof = sample();
        prof.stats.record_invocation(10, 500);
        prof.stats.record_build_rows(4);
        prof.stats.record_probes(8, 2);
        let fused = prof.child(0).unwrap();
        fused.stats.record_invocation(20, 300);
        fused.stats.record_rows_in(100);
        fused.stats.record_vec_run();
        fused.add_step_rows(0, 30);
        fused.add_step_rows(1, 20);

        let snap = prof.finish();
        assert_eq!(snap.op, "hash_join");
        assert_eq!(snap.rows_out, 10);
        assert_eq!(snap.wall_ns, 500);
        assert_eq!(snap.self_wall_ns(), 200);
        assert_eq!(snap.build_rows, 4);
        assert!((snap.probe_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(snap.node_count(), 4);
        let fused = &snap.children[0];
        assert_eq!(fused.rows_in, 100);
        assert_eq!(fused.vec_runs, 1);
        assert_eq!(
            fused.steps,
            vec![
                StepProfile { op: "filter".into(), rows_out: 30 },
                StepProfile { op: "project".into(), rows_out: 20 },
            ]
        );
    }

    #[test]
    fn self_time_saturates_on_overlapping_children() {
        let prof =
            ProfNode::with("union", Vec::new(), vec![ProfNode::new("a"), ProfNode::new("b")]);
        prof.stats.record_invocation(1, 100);
        prof.child(0).unwrap().stats.record_invocation(1, 80);
        prof.child(1).unwrap().stats.record_invocation(1, 90);
        assert_eq!(prof.finish().self_wall_ns(), 0);
    }

    #[test]
    fn render_and_json_are_well_formed() {
        let prof = sample();
        prof.stats.record_invocation(3, 1_000);
        prof.child(0).unwrap().stats.record_vec_run();
        let snap = prof.finish();
        let text = snap.to_string();
        assert!(text.contains("hash_join"));
        assert!(text.contains("[vec]"));
        assert!(text.contains("· filter"));
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"op\": \"scan(s)\""));
        assert_eq!(json.matches("\"op\":").count(), 4 + 2); // 4 nodes + 2 steps
    }

    #[test]
    fn flatten_is_preorder() {
        let snap = sample().finish();
        let ops: Vec<&str> = snap.flatten().iter().map(|n| n.op.as_str()).collect();
        assert_eq!(ops, vec!["hash_join", "fused", "scan(r)", "scan(s)"]);
    }

    #[test]
    fn defensive_accessors_do_not_panic() {
        let prof = ProfNode::new("leaf");
        assert!(prof.child(3).is_none());
        prof.add_step_rows(7, 1); // out-of-range step: dropped
        assert_eq!(prof.step_count(), 0);
        assert_eq!(prof.finish().steps.len(), 0);
    }
}
