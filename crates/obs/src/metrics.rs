//! Process-wide metrics: named counters, gauges and log-scaled latency
//! histograms behind a static registry.
//!
//! Handles are `Arc`s to relaxed atomics — call sites fetch them once (e.g.
//! into a `OnceLock`) and then record with a single atomic RMW, no locking.
//! The registry itself is only locked when a handle is first created or a
//! snapshot is taken.
//!
//! Counters are monotone and snapshots support subtraction
//! ([`MetricsSnapshot::delta_since`]), which is what test assertions and
//! bench reports want: "how many compiles happened during *this* stretch?".

use crate::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotone counter. All operations are relaxed: counters order nothing,
/// they only count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (e.g. "interner size right now").
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂-scaled buckets: bucket `i` counts samples whose value has
/// `i` significant bits, i.e. values in `[2^(i-1), 2^i)` (bucket 0 is the
/// zero bucket). 64 buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram over `u64` samples (typically nanoseconds) with log₂-scaled
/// buckets, a running sum and a count. Recording is two relaxed RMWs plus
/// one on the bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Copy the current bucket contents out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the upper bound of the first bucket at which
    /// the cumulative count reaches `q·count`. Accurate to the bucket's
    /// factor-of-two resolution; returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return if i == 0 { 0 } else { (1u64 << (i - 1)).saturating_mul(2) - 1 };
            }
        }
        u64::MAX
    }

    fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let n = self.buckets.len().max(earlier.buckets.len());
        let get = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        HistogramSnapshot {
            buckets: (0..n)
                .map(|i| get(&self.buckets, i).saturating_sub(get(&earlier.buckets, i)))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

/// The process-wide registry of named metrics. Obtain it via [`registry`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The process-wide [`MetricsRegistry`].
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

impl MetricsRegistry {
    /// Fetch (registering on first use) the counter named `name`. Cache the
    /// returned handle at the call site; recording through it never touches
    /// the registry lock again.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Fetch (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Fetch (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Copy every registered metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.value()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// A point-in-time copy of every registered metric, with subtraction for
/// "what happened during this stretch" assertions.
///
/// ```
/// use certus_obs::metrics::registry;
///
/// let c = registry().counter("doc.snapshot.widgets");
/// let before = registry().snapshot();
/// c.add(3);
/// let delta = registry().snapshot().delta_since(&before);
/// assert_eq!(delta.counter("doc.snapshot.widgets"), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Shorthand for `registry().snapshot()`.
    pub fn now() -> MetricsSnapshot {
        registry().snapshot()
    }

    /// Value of counter `name` (0 if never registered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name` (0 if never registered).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Counters and histograms become differences since `earlier`
    /// (saturating, so a metric registered in between reads as its absolute
    /// value); gauges keep their current reading — a gauge has no meaningful
    /// delta.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), v.saturating_sub(earlier.counter(k))))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, v)| {
                let base = earlier.histograms.get(k).cloned().unwrap_or_default();
                (k.clone(), v.delta_since(&base))
            })
            .collect();
        MetricsSnapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Render every metric as a JSON object keyed by kind then name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", json::escape(k), v));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", json::escape(k), v));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}}",
                json::escape(k),
                h.count,
                h.sum,
                json::number(h.mean()),
                h.quantile(0.50),
                h.quantile(0.99)
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = registry().counter("test.metrics.counter");
        let g = registry().gauge("test.metrics.gauge");
        let before = MetricsSnapshot::now();
        c.incr();
        c.add(4);
        g.set(17);
        let delta = MetricsSnapshot::now().delta_since(&before);
        assert_eq!(delta.counter("test.metrics.counter"), 5);
        assert_eq!(delta.gauge("test.metrics.gauge"), 17);
        assert_eq!(delta.counter("test.metrics.never_registered"), 0);
    }

    #[test]
    fn handles_are_shared() {
        let a = registry().counter("test.metrics.shared");
        let b = registry().counter("test.metrics.shared");
        let base = a.value();
        b.incr();
        assert_eq!(a.value(), base + 1);
    }

    #[test]
    fn histogram_buckets_scale_by_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);

        let h = Histogram::default();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1106);
        assert!((snap.mean() - 1106.0 / 6.0).abs() < 1e-9);
        assert!(snap.quantile(0.5) <= snap.quantile(0.99));
        assert!(snap.quantile(1.0) >= 1000);
    }

    #[test]
    fn histogram_delta_subtracts() {
        let h = registry().histogram("test.metrics.hist");
        let before = MetricsSnapshot::now();
        h.record(10);
        h.record(2000);
        let delta = MetricsSnapshot::now().delta_since(&before);
        let hs = delta.histogram("test.metrics.hist").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.sum, 2010);
    }

    #[test]
    fn snapshot_renders_json() {
        registry().counter("test.metrics.json").add(2);
        let s = MetricsSnapshot::now().to_json();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"test.metrics.json\""));
    }
}
