//! Evaluation regimes for conditions over incomplete databases.

/// Which null semantics the evaluator applies to selection conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NullSemantics {
    /// SQL's three-valued logic: comparisons involving a null are `unknown`,
    /// connectives follow Kleene logic, and `WHERE` keeps only `true` rows.
    /// This is `EvalSQL` in the paper.
    #[default]
    Sql,
    /// Naive evaluation: nulls are treated as ordinary values (`⊥ᵢ = ⊥ᵢ`
    /// holds, `⊥ᵢ = c` does not). By Fact 1 of the paper this computes
    /// exactly the certain answers with nulls for positive relational algebra
    /// (plus division).
    Naive,
}

impl NullSemantics {
    /// A short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            NullSemantics::Sql => "sql-3vl",
            NullSemantics::Naive => "naive",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sql() {
        assert_eq!(NullSemantics::default(), NullSemantics::Sql);
    }

    #[test]
    fn labels() {
        assert_eq!(NullSemantics::Sql.label(), "sql-3vl");
        assert_eq!(NullSemantics::Naive.label(), "naive");
    }
}
