//! Output-schema inference and validation for algebra expressions.

use crate::condition::{Condition, Operand};
use crate::error::AlgebraError;
use crate::expr::{AggFunc, RaExpr};
use crate::Result;
use certus_data::{Attribute, Database, Schema, ValueType};
use std::sync::Arc;

/// Anything that can provide table schemas and key constraints — the planner
/// and the translations only need this much of a database.
pub trait Catalog {
    /// The schema of a named table.
    fn table_schema(&self, name: &str) -> Result<Arc<Schema>>;
    /// The declared primary-key columns of a table (empty if none).
    fn table_key(&self, name: &str) -> Vec<String>;
    /// All table names (used by the active-domain computation of the Fig. 2
    /// translation).
    fn tables(&self) -> Vec<String>;
}

impl Catalog for Database {
    fn table_schema(&self, name: &str) -> Result<Arc<Schema>> {
        Ok(self.table_def(name).map_err(AlgebraError::Data)?.schema.clone())
    }

    fn table_key(&self, name: &str) -> Vec<String> {
        self.table_def(name).map(|d| d.primary_key.clone()).unwrap_or_default()
    }

    fn tables(&self) -> Vec<String> {
        self.table_names().into_iter().map(String::from).collect()
    }
}

/// Compute the output schema of an expression, validating column references,
/// arities and set-operation compatibility along the way.
pub fn output_schema(expr: &RaExpr, catalog: &dyn Catalog) -> Result<Schema> {
    certus_data::profile::record_schema_inference();
    match expr {
        RaExpr::Relation { name, alias } => {
            let schema = catalog.table_schema(name)?;
            Ok(match alias {
                Some(a) => schema.qualify(a),
                None => (*schema).clone(),
            })
        }
        RaExpr::Values { schema, rows } => {
            for r in rows {
                if r.len() != schema.arity() {
                    return Err(AlgebraError::Malformed(format!(
                        "literal row arity {} does not match schema arity {}",
                        r.len(),
                        schema.arity()
                    )));
                }
            }
            Ok(schema.clone())
        }
        RaExpr::Select { input, condition } => {
            let schema = output_schema(input, catalog)?;
            check_condition(condition, &schema)?;
            Ok(schema)
        }
        RaExpr::Project { input, columns } => {
            let schema = output_schema(input, catalog)?;
            let mut attrs = Vec::with_capacity(columns.len());
            for c in columns {
                let pos = schema.position_of(&c.column).map_err(AlgebraError::Data)?;
                let src = schema.attr(pos);
                attrs.push(Attribute {
                    name: c.output_name().to_string(),
                    ty: src.ty,
                    nullable: src.nullable,
                });
            }
            Ok(Schema::new(attrs))
        }
        RaExpr::Product { left, right } => {
            Ok(output_schema(left, catalog)?.concat(&output_schema(right, catalog)?))
        }
        RaExpr::Join { left, right, condition } => {
            let schema = output_schema(left, catalog)?.concat(&output_schema(right, catalog)?);
            check_condition(condition, &schema)?;
            Ok(schema)
        }
        RaExpr::Union { left, right }
        | RaExpr::Intersect { left, right }
        | RaExpr::Difference { left, right } => {
            let l = output_schema(left, catalog)?;
            let r = output_schema(right, catalog)?;
            if !l.union_compatible(&r) {
                return Err(AlgebraError::Malformed(format!(
                    "set operation over incompatible schemas {l} and {r}"
                )));
            }
            Ok(l)
        }
        RaExpr::SemiJoin { left, right, condition }
        | RaExpr::AntiJoin { left, right, condition } => {
            let l = output_schema(left, catalog)?;
            let combined = l.concat(&output_schema(right, catalog)?);
            check_condition(condition, &combined)?;
            Ok(l)
        }
        RaExpr::UnifySemiJoin { left, right } | RaExpr::UnifyAntiSemiJoin { left, right } => {
            let l = output_schema(left, catalog)?;
            let r = output_schema(right, catalog)?;
            if l.arity() != r.arity() {
                return Err(AlgebraError::Malformed(format!(
                    "unification semijoin over different arities {} and {}",
                    l.arity(),
                    r.arity()
                )));
            }
            Ok(l)
        }
        RaExpr::Division { left, right } => {
            let l = output_schema(left, catalog)?;
            let r = output_schema(right, catalog)?;
            // Divisor columns are matched against dividend columns by base name.
            let mut keep = Vec::new();
            for (i, a) in l.attrs().iter().enumerate() {
                let shared = r.attrs().iter().any(|b| b.base_name() == a.base_name());
                if !shared {
                    keep.push(i);
                }
            }
            if keep.len() + r.arity() != l.arity() {
                return Err(AlgebraError::Malformed(
                    "division requires the divisor's columns to be a subset of the dividend's"
                        .into(),
                ));
            }
            Ok(l.project(&keep))
        }
        RaExpr::Rename { input, columns } => {
            let schema = output_schema(input, catalog)?;
            schema.rename(columns).map_err(AlgebraError::Data)
        }
        RaExpr::Distinct { input } => output_schema(input, catalog),
        RaExpr::Aggregate { input, group_by, aggregates } => {
            let schema = output_schema(input, catalog)?;
            let mut attrs = Vec::new();
            for g in group_by {
                let pos = schema.position_of(g).map_err(AlgebraError::Data)?;
                attrs.push(schema.attr(pos).clone());
            }
            for a in aggregates {
                let ty = match a.func {
                    AggFunc::CountStar | AggFunc::Count => ValueType::Int,
                    AggFunc::Avg => ValueType::Float,
                    AggFunc::Sum | AggFunc::Min | AggFunc::Max => match &a.column {
                        Some(c) => {
                            let pos = schema.position_of(c).map_err(AlgebraError::Data)?;
                            schema.attr(pos).ty
                        }
                        None => ValueType::Any,
                    },
                };
                if a.func != AggFunc::CountStar {
                    let col = a.column.as_ref().ok_or_else(|| {
                        AlgebraError::Malformed(format!("aggregate {} needs a column", a.func))
                    })?;
                    schema.position_of(col).map_err(AlgebraError::Data)?;
                }
                attrs.push(Attribute { name: a.alias.clone(), ty, nullable: true });
            }
            Ok(Schema::new(attrs))
        }
    }
}

/// Check that every column referenced by a condition resolves in the schema.
/// Scalar subqueries are *not* resolved here (they are uncorrelated and are
/// validated when evaluated).
pub fn check_condition(condition: &Condition, schema: &Schema) -> Result<()> {
    for col in condition.columns() {
        schema.position_of(&col).map_err(AlgebraError::Data)?;
    }
    // Validate operand shapes: scalar subqueries must be single-column.
    validate_operands(condition)
}

fn validate_operands(condition: &Condition) -> Result<()> {
    match condition {
        Condition::Cmp { left, right, .. } => {
            for op in [left, right] {
                if let Operand::Scalar(q) = op {
                    if let RaExpr::Aggregate { aggregates, group_by, .. } = q.as_ref() {
                        if aggregates.len() + group_by.len() != 1 {
                            return Err(AlgebraError::ScalarSubquery(
                                "scalar subquery must produce a single column".into(),
                            ));
                        }
                    }
                }
            }
            Ok(())
        }
        Condition::And(a, b) | Condition::Or(a, b) => {
            validate_operands(a)?;
            validate_operands(b)
        }
        Condition::Not(inner) => validate_operands(inner),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggExpr, ProjCol};
    use certus_data::builder::rel;
    use certus_data::Value;

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a", "b"], vec![vec![Value::Int(1), Value::Int(2)]]));
        db.insert_relation("s", rel(&["c"], vec![vec![Value::Int(1)]]));
        db
    }

    #[test]
    fn relation_and_alias_schemas() {
        let db = db();
        let s = output_schema(&RaExpr::relation("r"), &db).unwrap();
        assert_eq!(s.names(), vec!["a", "b"]);
        let s = output_schema(&RaExpr::relation_as("r", "x"), &db).unwrap();
        assert_eq!(s.names(), vec!["x.a", "x.b"]);
        assert!(output_schema(&RaExpr::relation("nope"), &db).is_err());
    }

    #[test]
    fn select_validates_columns() {
        let db = db();
        let ok = RaExpr::relation("r").select(Condition::eq_cols("a", "b"));
        assert!(output_schema(&ok, &db).is_ok());
        let bad = RaExpr::relation("r").select(Condition::eq_cols("a", "zzz"));
        assert!(output_schema(&bad, &db).is_err());
    }

    #[test]
    fn project_renames_and_types() {
        let db = db();
        let q = RaExpr::relation("r")
            .project_cols(vec![ProjCol::aliased("b", "bb"), ProjCol::named("a")]);
        let s = output_schema(&q, &db).unwrap();
        assert_eq!(s.names(), vec!["bb", "a"]);
    }

    #[test]
    fn set_ops_require_compatibility() {
        let db = db();
        let bad = RaExpr::relation("r").union(RaExpr::relation("s"));
        assert!(output_schema(&bad, &db).is_err());
        let ok = RaExpr::relation("s").union(RaExpr::relation("s"));
        assert!(output_schema(&ok, &db).is_ok());
    }

    #[test]
    fn semijoin_keeps_left_schema_and_checks_condition() {
        let db = db();
        let q =
            RaExpr::relation("r").semi_join(RaExpr::relation("s"), Condition::eq_cols("a", "c"));
        let s = output_schema(&q, &db).unwrap();
        assert_eq!(s.names(), vec!["a", "b"]);
        let bad =
            RaExpr::relation("r").anti_join(RaExpr::relation("s"), Condition::eq_cols("a", "zzz"));
        assert!(output_schema(&bad, &db).is_err());
    }

    #[test]
    fn unify_semijoin_requires_same_arity() {
        let db = db();
        let bad = RaExpr::relation("r").unify_semi_join(RaExpr::relation("s"));
        assert!(output_schema(&bad, &db).is_err());
        let ok = RaExpr::relation("s").unify_anti_join(RaExpr::relation("s"));
        assert_eq!(output_schema(&ok, &db).unwrap().names(), vec!["c"]);
    }

    #[test]
    fn division_schema() {
        let mut db = Database::new();
        db.insert_relation(
            "takes",
            rel(&["student", "course"], vec![vec![Value::Int(1), Value::Int(10)]]),
        );
        db.insert_relation("courses", rel(&["course"], vec![vec![Value::Int(10)]]));
        let q = RaExpr::relation("takes").divide(RaExpr::relation("courses"));
        assert_eq!(output_schema(&q, &db).unwrap().names(), vec!["student"]);
    }

    #[test]
    fn aggregate_schema() {
        let db = db();
        let q = RaExpr::relation("r").aggregate(
            &["a"],
            vec![AggExpr::new(AggFunc::Avg, "b", "avg_b"), AggExpr::count_star("n")],
        );
        let s = output_schema(&q, &db).unwrap();
        assert_eq!(s.names(), vec!["a", "avg_b", "n"]);
        assert_eq!(s.attr(1).ty, ValueType::Float);
        assert_eq!(s.attr(2).ty, ValueType::Int);
    }

    #[test]
    fn rename_checks_arity() {
        let db = db();
        assert!(output_schema(&RaExpr::relation("r").rename(&["x"]), &db).is_err());
        let s = output_schema(&RaExpr::relation("r").rename(&["x", "y"]), &db).unwrap();
        assert_eq!(s.names(), vec!["x", "y"]);
    }
}
