//! Reference evaluator for relational algebra over incomplete databases.
//!
//! This is a straightforward tuple-at-a-time evaluator meant as the *semantic
//! ground truth*: every operator is implemented by its definition, with the
//! null semantics ([`NullSemantics`]) applied to conditions. `certus-engine`
//! provides the optimized physical execution used for the performance
//! experiments; its results are tested against this evaluator.

use crate::condition::{Condition, Operand};
use crate::error::AlgebraError;
use crate::expr::{AggExpr, AggFunc, RaExpr};
use crate::schema_infer::output_schema;
use crate::semantics::NullSemantics;
use crate::Result;
use certus_data::compare::{naive_cmp, sql_cmp};
use certus_data::like::{naive_like, sql_like};
use certus_data::unify::tuples_unify;
use certus_data::{Database, Relation, Schema, Truth, Tuple, Value};
use std::cell::RefCell;
use std::collections::HashMap;

/// Evaluate an expression against a database under the given null semantics.
pub fn eval(expr: &RaExpr, db: &Database, semantics: NullSemantics) -> Result<Relation> {
    Evaluator::new(db, semantics).eval(expr)
}

/// The reference evaluator. Holds the database, the null semantics, and a
/// cache of scalar-subquery results (scalar subqueries are uncorrelated, so
/// they are evaluated once per query).
pub struct Evaluator<'a> {
    db: &'a Database,
    semantics: NullSemantics,
    scalar_cache: RefCell<HashMap<usize, Option<Value>>>,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator.
    pub fn new(db: &'a Database, semantics: NullSemantics) -> Self {
        Evaluator { db, semantics, scalar_cache: RefCell::new(HashMap::new()) }
    }

    /// The null semantics this evaluator applies.
    pub fn semantics(&self) -> NullSemantics {
        self.semantics
    }

    /// Evaluate an expression to a relation.
    pub fn eval(&self, expr: &RaExpr) -> Result<Relation> {
        match expr {
            RaExpr::Relation { name, alias } => {
                let rel = self.db.relation(name).map_err(AlgebraError::Data)?;
                match alias {
                    Some(a) => Ok(Relation::from_parts(
                        rel.schema().qualify(a).shared(),
                        rel.tuples().to_vec(),
                    )),
                    None => Ok(rel.clone()),
                }
            }
            RaExpr::Values { schema, rows } => {
                Relation::new(schema.clone().shared(), rows.clone()).map_err(AlgebraError::Data)
            }
            RaExpr::Select { input, condition } => {
                let rel = self.eval(input)?;
                let schema = rel.schema().clone();
                let tuples = rel
                    .into_tuples()
                    .into_iter()
                    .map(|t| self.eval_condition(condition, &schema, &t).map(|tr| (t, tr)))
                    .collect::<Result<Vec<_>>>()?
                    .into_iter()
                    .filter(|(_, tr)| tr.is_true())
                    .map(|(t, _)| t)
                    .collect();
                Ok(Relation::from_parts(schema, tuples))
            }
            RaExpr::Project { input, columns } => {
                let rel = self.eval(input)?;
                let out_schema = output_schema(expr, self.db)?;
                let positions: Vec<usize> = columns
                    .iter()
                    .map(|c| rel.schema().position_of(&c.column).map_err(AlgebraError::Data))
                    .collect::<Result<Vec<_>>>()?;
                let tuples: Vec<Tuple> = rel.iter().map(|t| t.project(&positions)).collect();
                let mut out = Relation::from_parts(out_schema.shared(), tuples);
                out.dedup();
                Ok(out)
            }
            RaExpr::Product { left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                self.product(&l, &r, &Condition::True)
            }
            RaExpr::Join { left, right, condition } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                self.product(&l, &r, condition)
            }
            RaExpr::Union { left, right } => {
                let l = self.eval(left)?;
                let r = self.align(&l, self.eval(right)?);
                l.union_owned(&r).map_err(AlgebraError::Data)
            }
            RaExpr::Intersect { left, right } => {
                let l = self.eval(left)?;
                let r = self.align(&l, self.eval(right)?);
                l.intersect_owned(&r).map_err(AlgebraError::Data)
            }
            RaExpr::Difference { left, right } => {
                let l = self.eval(left)?;
                let r = self.align(&l, self.eval(right)?);
                l.difference_owned(&r).map_err(AlgebraError::Data)
            }
            RaExpr::SemiJoin { left, right, condition } => {
                self.semi_like(left, right, condition, true)
            }
            RaExpr::AntiJoin { left, right, condition } => {
                self.semi_like(left, right, condition, false)
            }
            RaExpr::UnifySemiJoin { left, right } => self.unify_semi(left, right, true),
            RaExpr::UnifyAntiSemiJoin { left, right } => self.unify_semi(left, right, false),
            RaExpr::Division { left, right } => self.division(left, right),
            RaExpr::Rename { input, columns } => {
                let rel = self.eval(input)?;
                let schema = rel.schema().rename(columns).map_err(AlgebraError::Data)?.shared();
                Ok(Relation::from_parts(schema, rel.tuples().to_vec()))
            }
            RaExpr::Distinct { input } => Ok(self.eval(input)?.into_distinct()),
            RaExpr::Aggregate { input, group_by, aggregates } => {
                self.aggregate(expr, input, group_by, aggregates)
            }
        }
    }

    /// Align the schema of `r` to the schema of `l` for a set operation (SQL
    /// set operations are positional; only arity/type compatibility matters).
    fn align(&self, l: &Relation, r: Relation) -> Relation {
        Relation::from_parts(l.schema().clone(), r.into_tuples())
    }

    fn product(&self, l: &Relation, r: &Relation, condition: &Condition) -> Result<Relation> {
        let schema = l.schema().concat(r.schema()).shared();
        let mut tuples = Vec::new();
        for lt in l.iter() {
            for rt in r.iter() {
                let combined = lt.concat(rt);
                if self.eval_condition(condition, &schema, &combined)?.is_true() {
                    tuples.push(combined);
                }
            }
        }
        Ok(Relation::from_parts(schema, tuples))
    }

    fn semi_like(
        &self,
        left: &RaExpr,
        right: &RaExpr,
        condition: &Condition,
        keep_matching: bool,
    ) -> Result<Relation> {
        let l = self.eval(left)?;
        let r = self.eval(right)?;
        let combined = l.schema().concat(r.schema()).shared();
        let mut tuples = Vec::new();
        for lt in l.iter() {
            let mut matched = false;
            for rt in r.iter() {
                let c = lt.concat(rt);
                if self.eval_condition(condition, &combined, &c)?.is_true() {
                    matched = true;
                    break;
                }
            }
            if matched == keep_matching {
                tuples.push(lt.clone());
            }
        }
        Ok(Relation::from_parts(l.schema().clone(), tuples))
    }

    fn unify_semi(&self, left: &RaExpr, right: &RaExpr, keep_matching: bool) -> Result<Relation> {
        let l = self.eval(left)?;
        let r = self.eval(right)?;
        if l.arity() != r.arity() {
            return Err(AlgebraError::Malformed(format!(
                "unification semijoin over arities {} and {}",
                l.arity(),
                r.arity()
            )));
        }
        let tuples = l
            .iter()
            .filter(|lt| r.iter().any(|rt| tuples_unify(lt, rt)) == keep_matching)
            .cloned()
            .collect();
        Ok(Relation::from_parts(l.schema().clone(), tuples))
    }

    fn division(&self, left: &RaExpr, right: &RaExpr) -> Result<Relation> {
        let l = self.eval(left)?;
        let r = self.eval(right)?;
        // Map each divisor column to the dividend column with the same base name.
        let mut shared_positions = Vec::with_capacity(r.arity());
        for attr in r.schema().attrs() {
            let pos = l
                .schema()
                .attrs()
                .iter()
                .position(|a| a.base_name() == attr.base_name())
                .ok_or_else(|| {
                    AlgebraError::Malformed(format!(
                        "division: divisor column {} not found in dividend",
                        attr.name
                    ))
                })?;
            shared_positions.push(pos);
        }
        let key_positions: Vec<usize> =
            (0..l.arity()).filter(|i| !shared_positions.contains(i)).collect();
        let out_schema = l.schema().project(&key_positions).shared();
        let all: std::collections::HashSet<&Tuple> = l.iter().collect();
        let mut seen_keys = std::collections::HashSet::new();
        let mut tuples = Vec::new();
        for lt in l.iter() {
            let key = lt.project(&key_positions);
            if !seen_keys.insert(key.clone()) {
                continue;
            }
            let ok = r.iter().all(|rt| {
                // Reassemble a dividend tuple with this key and the divisor values.
                let mut vals: Vec<Value> = lt.values().to_vec();
                for (ri, &lp) in shared_positions.iter().enumerate() {
                    vals[lp] = rt[ri].clone();
                }
                all.contains(&Tuple::new(vals))
            });
            if ok {
                tuples.push(key);
            }
        }
        Ok(Relation::from_parts(out_schema, tuples))
    }

    fn aggregate(
        &self,
        expr: &RaExpr,
        input: &RaExpr,
        group_by: &[String],
        aggregates: &[AggExpr],
    ) -> Result<Relation> {
        let rel = self.eval(input)?;
        let out_schema = output_schema(expr, self.db)?.shared();
        let group_pos: Vec<usize> = group_by
            .iter()
            .map(|g| rel.schema().position_of(g).map_err(AlgebraError::Data))
            .collect::<Result<Vec<_>>>()?;
        let agg_pos: Vec<Option<usize>> = aggregates
            .iter()
            .map(|a| match &a.column {
                Some(c) => rel.schema().position_of(c).map(Some).map_err(AlgebraError::Data),
                None => Ok(None),
            })
            .collect::<Result<Vec<_>>>()?;

        let mut groups: HashMap<Tuple, Vec<&Tuple>> = HashMap::new();
        let mut order: Vec<Tuple> = Vec::new();
        for t in rel.iter() {
            let key = t.project(&group_pos);
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(t);
        }
        // A global aggregate over an empty input still produces one row.
        if group_by.is_empty() && groups.is_empty() {
            let key = Tuple::empty();
            order.push(key.clone());
            groups.insert(key, Vec::new());
        }

        let mut tuples = Vec::new();
        for key in order {
            let rows = &groups[&key];
            let mut out: Vec<Value> = key.values().to_vec();
            for (a, pos) in aggregates.iter().zip(&agg_pos) {
                out.push(compute_aggregate(a.func, *pos, rows));
            }
            tuples.push(Tuple::new(out));
        }
        Ok(Relation::from_parts(out_schema, tuples))
    }

    /// Evaluate a condition against a tuple of the given schema, producing a
    /// three-valued truth value (naive semantics never yields `Unknown`).
    pub fn eval_condition(
        &self,
        condition: &Condition,
        schema: &Schema,
        tuple: &Tuple,
    ) -> Result<Truth> {
        match condition {
            Condition::True => Ok(Truth::True),
            Condition::False => Ok(Truth::False),
            Condition::Cmp { left, op, right } => {
                let l = self.operand_value(left, schema, tuple)?;
                let r = self.operand_value(right, schema, tuple)?;
                match (l, r) {
                    (Some(a), Some(b)) => Ok(match self.semantics {
                        NullSemantics::Sql => sql_cmp(&a, *op, &b),
                        NullSemantics::Naive => Truth::from_bool(naive_cmp(&a, *op, &b)),
                    }),
                    // An empty scalar subquery behaves like a NULL operand.
                    _ => Ok(match self.semantics {
                        NullSemantics::Sql => Truth::Unknown,
                        NullSemantics::Naive => Truth::False,
                    }),
                }
            }
            Condition::IsNull(x) => {
                let v = self.operand_value(x, schema, tuple)?;
                Ok(Truth::from_bool(v.map(|v| v.is_null()).unwrap_or(true)))
            }
            Condition::IsNotNull(x) => {
                let v = self.operand_value(x, schema, tuple)?;
                Ok(Truth::from_bool(v.map(|v| v.is_const()).unwrap_or(false)))
            }
            Condition::Like { expr, pattern, negated } => {
                let v = self.operand_value(expr, schema, tuple)?;
                let base = match v {
                    Some(v) => match self.semantics {
                        NullSemantics::Sql => sql_like(&v, pattern),
                        NullSemantics::Naive => Truth::from_bool(naive_like(&v, pattern)),
                    },
                    None => Truth::Unknown,
                };
                Ok(if *negated { base.negate() } else { base })
            }
            Condition::InList { expr, list, negated } => {
                let v = self.operand_value(expr, schema, tuple)?;
                let base = match v {
                    Some(v) => {
                        let hits = list.iter().map(|item| match self.semantics {
                            NullSemantics::Sql => {
                                sql_cmp(&v, certus_data::compare::CmpOp::Eq, item)
                            }
                            NullSemantics::Naive => Truth::from_bool(naive_cmp(
                                &v,
                                certus_data::compare::CmpOp::Eq,
                                item,
                            )),
                        });
                        Truth::any(hits)
                    }
                    None => Truth::Unknown,
                };
                let base = if self.semantics == NullSemantics::Naive && base.is_unknown() {
                    Truth::False
                } else {
                    base
                };
                Ok(if *negated { base.negate() } else { base })
            }
            Condition::And(a, b) => Ok(self
                .eval_condition(a, schema, tuple)?
                .and(self.eval_condition(b, schema, tuple)?)),
            Condition::Or(a, b) => Ok(self
                .eval_condition(a, schema, tuple)?
                .or(self.eval_condition(b, schema, tuple)?)),
            Condition::Not(inner) => Ok(self.eval_condition(inner, schema, tuple)?.negate()),
        }
    }

    fn operand_value(
        &self,
        operand: &Operand,
        schema: &Schema,
        tuple: &Tuple,
    ) -> Result<Option<Value>> {
        match operand {
            Operand::Col(name) => {
                let pos = schema.position_of(name).map_err(AlgebraError::Data)?;
                Ok(Some(tuple[pos].clone()))
            }
            Operand::Const(v) => Ok(Some(v.clone())),
            Operand::Scalar(q) => self.scalar_value(q),
        }
    }

    /// Evaluate an uncorrelated scalar subquery (memoized by expression
    /// identity). Returns `None` if the subquery produces no rows.
    fn scalar_value(&self, q: &RaExpr) -> Result<Option<Value>> {
        let key = q as *const RaExpr as usize;
        if let Some(v) = self.scalar_cache.borrow().get(&key) {
            return Ok(v.clone());
        }
        let rel = self.eval(q)?;
        if rel.arity() != 1 {
            return Err(AlgebraError::ScalarSubquery(format!(
                "scalar subquery produced {} columns",
                rel.arity()
            )));
        }
        if rel.len() > 1 {
            return Err(AlgebraError::ScalarSubquery(format!(
                "scalar subquery produced {} rows",
                rel.len()
            )));
        }
        let v = rel.tuples().first().map(|t| t[0].clone());
        self.scalar_cache.borrow_mut().insert(key, v.clone());
        Ok(v)
    }
}

/// Compute one aggregate over a group of tuples. SQL null handling: nulls are
/// ignored by all aggregates except `COUNT(*)`; an empty set of non-null
/// inputs yields `NULL` (0 for counts). Shared with the engine's compiled
/// aggregate operator, so both runtimes agree by construction.
pub fn compute_aggregate(func: AggFunc, pos: Option<usize>, rows: &[&Tuple]) -> Value {
    match func {
        AggFunc::CountStar => Value::Int(rows.len() as i64),
        AggFunc::Count => {
            let pos = pos.expect("COUNT(col) has a column");
            Value::Int(rows.iter().filter(|t| t[pos].is_const()).count() as i64)
        }
        AggFunc::Sum | AggFunc::Avg => {
            let pos = pos.expect("aggregate has a column");
            let nums: Vec<f64> = rows.iter().filter_map(|t| t[pos].as_f64()).collect();
            if nums.is_empty() {
                return Value::fresh_null();
            }
            let sum: f64 = nums.iter().sum();
            match func {
                AggFunc::Sum => Value::Float(sum),
                _ => Value::Float(sum / nums.len() as f64),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let pos = pos.expect("aggregate has a column");
            let mut vals: Vec<&Value> =
                rows.iter().map(|t| &t[pos]).filter(|v| v.is_const()).collect();
            if vals.is_empty() {
                return Value::fresh_null();
            }
            vals.sort_by(|a, b| {
                certus_data::compare::const_ordering(a, b).unwrap_or(std::cmp::Ordering::Equal)
            });
            match func {
                AggFunc::Min => (*vals.first().unwrap()).clone(),
                _ => (*vals.last().unwrap()).clone(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{col, lit};
    use certus_data::builder::rel;
    use certus_data::null::NullId;

    fn null(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![
                    vec![Value::Int(1), Value::Int(2)],
                    vec![Value::Int(2), null(1)],
                    vec![Value::Int(3), Value::Int(3)],
                ],
            ),
        );
        db.insert_relation("s", rel(&["c"], vec![vec![Value::Int(2)], vec![null(2)]]));
        db
    }

    #[test]
    fn select_sql_vs_naive_on_nulls() {
        let db = sample_db();
        // a = b : row (3,3) matches under both; row (2,⊥) matches under neither
        let q = RaExpr::relation("r").select(Condition::eq_cols("a", "b"));
        assert_eq!(eval(&q, &db, NullSemantics::Sql).unwrap().len(), 1);
        assert_eq!(eval(&q, &db, NullSemantics::Naive).unwrap().len(), 1);
        // b IS NULL picks one row
        let q2 = RaExpr::relation("r").select(Condition::IsNull(Operand::Col("b".into())));
        assert_eq!(eval(&q2, &db, NullSemantics::Sql).unwrap().len(), 1);
    }

    #[test]
    fn intro_example_false_positive() {
        // R = {1}, S = {NULL}: SQL difference (NOT EXISTS) returns {1}, which is
        // not a certain answer. The reference evaluator reproduces SQL behaviour.
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
        db.insert_relation("s", rel(&["a"], vec![vec![null(7)]]));
        let q = RaExpr::relation("r")
            .anti_join(RaExpr::relation_as("s", "s2"), Condition::eq_cols("a", "s2.a"));
        let out = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.len(), 1, "SQL evaluation produces the false positive");
    }

    #[test]
    fn projection_deduplicates() {
        let db = sample_db();
        let q = RaExpr::relation("s").project(&["c"]);
        assert_eq!(eval(&q, &db, NullSemantics::Sql).unwrap().len(), 2);
        let q2 = RaExpr::relation("r").project(&["a"]).union(RaExpr::relation("r").project(&["a"]));
        assert_eq!(eval(&q2, &db, NullSemantics::Sql).unwrap().len(), 3);
    }

    #[test]
    fn join_and_product() {
        let db = sample_db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), Condition::eq_cols("a", "c"));
        let out = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.len(), 1); // only a=2 joins with c=2; null never joins under SQL
        let p = RaExpr::relation("r").product(RaExpr::relation("s"));
        assert_eq!(eval(&p, &db, NullSemantics::Sql).unwrap().len(), 6);
    }

    #[test]
    fn naive_join_matches_same_null() {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![null(1)]]));
        db.insert_relation("s", rel(&["b"], vec![vec![null(1)], vec![null(2)]]));
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), Condition::eq_cols("a", "b"));
        // Under SQL 3VL no rows join; under naive evaluation ⊥1 = ⊥1 joins.
        assert_eq!(eval(&q, &db, NullSemantics::Sql).unwrap().len(), 0);
        assert_eq!(eval(&q, &db, NullSemantics::Naive).unwrap().len(), 1);
    }

    #[test]
    fn semi_and_anti_join() {
        let db = sample_db();
        let semi =
            RaExpr::relation("r").semi_join(RaExpr::relation("s"), Condition::eq_cols("a", "c"));
        assert_eq!(eval(&semi, &db, NullSemantics::Sql).unwrap().len(), 1);
        let anti =
            RaExpr::relation("r").anti_join(RaExpr::relation("s"), Condition::eq_cols("a", "c"));
        assert_eq!(eval(&anti, &db, NullSemantics::Sql).unwrap().len(), 2);
    }

    #[test]
    fn unify_semijoins() {
        let db = sample_db();
        // r(a) tuples: 1,2,3 ; s(c) tuples: 2, ⊥ — every r tuple unifies with ⊥.
        let l = RaExpr::relation("r").project(&["a"]);
        let semi = l.clone().unify_semi_join(RaExpr::relation("s"));
        assert_eq!(eval(&semi, &db, NullSemantics::Sql).unwrap().len(), 3);
        let anti = l.unify_anti_join(RaExpr::relation("s"));
        assert_eq!(eval(&anti, &db, NullSemantics::Sql).unwrap().len(), 0);
    }

    #[test]
    fn division_students_taking_all_courses() {
        let mut db = Database::new();
        db.insert_relation(
            "takes",
            rel(
                &["student", "course"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(1), Value::Int(20)],
                    vec![Value::Int(2), Value::Int(10)],
                ],
            ),
        );
        db.insert_relation(
            "courses",
            rel(&["course"], vec![vec![Value::Int(10)], vec![Value::Int(20)]]),
        );
        let q = RaExpr::relation("takes").divide(RaExpr::relation("courses"));
        let out = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0][0], Value::Int(1));
    }

    #[test]
    fn aggregate_with_nulls_and_groups() {
        let db = sample_db();
        let q = RaExpr::relation("r").aggregate(
            &[],
            vec![
                AggExpr::count_star("n"),
                AggExpr::new(AggFunc::Count, "b", "nb"),
                AggExpr::new(AggFunc::Avg, "a", "avg_a"),
                AggExpr::new(AggFunc::Max, "a", "max_a"),
            ],
        );
        let out = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.len(), 1);
        let t = &out.tuples()[0];
        assert_eq!(t[0], Value::Int(3));
        assert_eq!(t[1], Value::Int(2)); // one b is null
        assert_eq!(t[2], Value::Float(2.0));
        assert_eq!(t[3], Value::Int(3));
    }

    #[test]
    fn aggregate_on_empty_input() {
        let mut db = Database::new();
        db.insert_relation("e", rel(&["x"], vec![]));
        let q = RaExpr::relation("e")
            .aggregate(&[], vec![AggExpr::count_star("n"), AggExpr::new(AggFunc::Avg, "x", "a")]);
        let out = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0][0], Value::Int(0));
        assert!(out.tuples()[0][1].is_null());
    }

    #[test]
    fn scalar_subquery_comparison() {
        let db = sample_db();
        // a > AVG(a) keeps only a = 3 (avg = 2).
        let avg =
            RaExpr::relation("r").aggregate(&[], vec![AggExpr::new(AggFunc::Avg, "a", "avg_a")]);
        let cond = Condition::Cmp {
            left: col("a"),
            op: certus_data::compare::CmpOp::Gt,
            right: Operand::Scalar(Box::new(avg)),
        };
        let q = RaExpr::relation("r").select(cond).project(&["a"]);
        let out = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0][0], Value::Int(3));
    }

    #[test]
    fn in_list_and_like() {
        let mut db = Database::new();
        db.insert_relation(
            "p",
            rel(
                &["name"],
                vec![vec![Value::str("almond antique")], vec![null(1)], vec![Value::str("navy")]],
            ),
        );
        let q = RaExpr::relation("p").select(Condition::Like {
            expr: col("name"),
            pattern: "%antique%".into(),
            negated: false,
        });
        assert_eq!(eval(&q, &db, NullSemantics::Sql).unwrap().len(), 1);
        let q2 = RaExpr::relation("p").select(Condition::InList {
            expr: col("name"),
            list: vec![Value::str("navy"), Value::str("red")],
            negated: false,
        });
        assert_eq!(eval(&q2, &db, NullSemantics::Sql).unwrap().len(), 1);
    }

    #[test]
    fn rename_and_values() {
        let db = Database::new();
        let v = lit(&["x", "y"], vec![vec![Value::Int(1), Value::Int(2)]]);
        let q = v.rename(&["a", "b"]).project(&["b"]);
        let out = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.schema().names(), vec!["b"]);
        assert_eq!(out.tuples()[0][0], Value::Int(2));
    }
}
