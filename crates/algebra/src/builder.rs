//! Small helpers for building algebra expressions and conditions fluently.

use crate::condition::{Condition, Operand};
use crate::expr::RaExpr;
use certus_data::compare::CmpOp;
use certus_data::{Schema, Tuple, Value};

/// A column operand.
pub fn col(name: impl Into<String>) -> Operand {
    Operand::Col(name.into())
}

/// A constant operand.
pub fn lit_val(v: impl Into<Value>) -> Operand {
    Operand::Const(v.into())
}

/// Scan a base relation.
pub fn table(name: impl Into<String>) -> RaExpr {
    RaExpr::relation(name)
}

/// A literal relation from column names and rows.
pub fn lit(columns: &[&str], rows: Vec<Vec<Value>>) -> RaExpr {
    RaExpr::Values {
        schema: Schema::of_names(columns),
        rows: rows.into_iter().map(Tuple::new).collect(),
    }
}

/// Alias of [`lit`] matching the re-export name used in `lib.rs`.
pub fn values(columns: &[&str], rows: Vec<Vec<Value>>) -> RaExpr {
    lit(columns, rows)
}

/// `left = right` over two columns.
pub fn eq(a: impl Into<String>, b: impl Into<String>) -> Condition {
    Condition::eq_cols(a, b)
}

/// `column = constant`.
pub fn eq_const(a: impl Into<String>, v: impl Into<Value>) -> Condition {
    Condition::cmp_const(a, CmpOp::Eq, v.into())
}

/// `column <> constant`.
pub fn neq_const(a: impl Into<String>, v: impl Into<Value>) -> Condition {
    Condition::cmp_const(a, CmpOp::Neq, v.into())
}

/// `left <> right` over two columns.
pub fn neq(a: impl Into<String>, b: impl Into<String>) -> Condition {
    Condition::Cmp { left: col(a), op: CmpOp::Neq, right: col(b) }
}

/// `left > right` over two columns.
pub fn gt(a: impl Into<String>, b: impl Into<String>) -> Condition {
    Condition::Cmp { left: col(a), op: CmpOp::Gt, right: col(b) }
}

/// `column IS NULL`.
pub fn is_null(a: impl Into<String>) -> Condition {
    Condition::IsNull(col(a))
}

/// `column IS NOT NULL`.
pub fn is_not_null(a: impl Into<String>) -> Condition {
    Condition::IsNotNull(col(a))
}

/// `column LIKE pattern`.
pub fn like(a: impl Into<String>, pattern: impl Into<String>) -> Condition {
    Condition::Like { expr: col(a), pattern: pattern.into(), negated: false }
}

/// `column IN (values…)`.
pub fn in_list(a: impl Into<String>, values: Vec<Value>) -> Condition {
    Condition::InList { expr: col(a), list: values, negated: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::semantics::NullSemantics;
    use certus_data::Database;

    #[test]
    fn builders_produce_expected_shapes() {
        let c = eq("a", "b").and(eq_const("c", 1i64)).or(is_null("d"));
        assert!(c.columns().contains("a"));
        assert!(matches!(c, Condition::Or(_, _)));
        let q = table("r").select(neq("a", "b"));
        assert_eq!(q.base_relations(), vec!["r"]);
    }

    #[test]
    fn literal_relation_evaluates() {
        let db = Database::new();
        let q = values(&["x"], vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .select(eq_const("x", 2i64));
        let out = eval(&q, &db, NullSemantics::Sql).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn comparison_builders() {
        assert_eq!(gt("a", "b").to_string(), "a > b");
        assert_eq!(neq_const("a", 3i64).to_string(), "a <> 3");
        assert_eq!(like("p", "%x%").to_string(), "p LIKE '%x%'");
        assert_eq!(is_not_null("q").to_string(), "q IS NOT NULL");
        assert_eq!(in_list("n", vec![Value::Int(1)]).to_string(), "n IN (1)");
    }
}
