//! Generic traversal and rewriting helpers for [`RaExpr`] trees.
//!
//! Every rewrite pass in the planner is expressed through these three
//! primitives, so the per-pass code only has to say what happens *at* a node,
//! never how to walk the tree:
//!
//! * [`RaExpr::map_children`] — rebuild a node with each child transformed by
//!   a (fallible) function; the node's own payload (conditions, columns) is
//!   cloned unchanged.
//! * [`RaExpr::transform_up`] — bottom-up rewriting: children first, then the
//!   rebuilt node is handed to the callback.
//! * [`RaExpr::visit_pre`] — read-only pre-order traversal.

use crate::expr::RaExpr;

impl RaExpr {
    /// Rebuild this node, applying a fallible transformation to every direct
    /// child. Leaf nodes are cloned.
    pub fn map_children<E>(
        &self,
        f: &mut impl FnMut(&RaExpr) -> Result<RaExpr, E>,
    ) -> Result<RaExpr, E> {
        Ok(match self {
            RaExpr::Relation { .. } | RaExpr::Values { .. } => self.clone(),
            RaExpr::Select { input, condition } => f(input)?.select(condition.clone()),
            RaExpr::Project { input, columns } => f(input)?.project_cols(columns.clone()),
            RaExpr::Product { left, right } => f(left)?.product(f(right)?),
            RaExpr::Join { left, right, condition } => f(left)?.join(f(right)?, condition.clone()),
            RaExpr::Union { left, right } => f(left)?.union(f(right)?),
            RaExpr::Intersect { left, right } => f(left)?.intersect(f(right)?),
            RaExpr::Difference { left, right } => f(left)?.difference(f(right)?),
            RaExpr::SemiJoin { left, right, condition } => {
                f(left)?.semi_join(f(right)?, condition.clone())
            }
            RaExpr::AntiJoin { left, right, condition } => {
                f(left)?.anti_join(f(right)?, condition.clone())
            }
            RaExpr::UnifySemiJoin { left, right } => f(left)?.unify_semi_join(f(right)?),
            RaExpr::UnifyAntiSemiJoin { left, right } => f(left)?.unify_anti_join(f(right)?),
            RaExpr::Division { left, right } => f(left)?.divide(f(right)?),
            RaExpr::Rename { input, columns } => {
                RaExpr::Rename { input: Box::new(f(input)?), columns: columns.clone() }
            }
            RaExpr::Distinct { input } => f(input)?.distinct(),
            RaExpr::Aggregate { input, group_by, aggregates } => RaExpr::Aggregate {
                input: Box::new(f(input)?),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            },
        })
    }

    /// Bottom-up rewriting: transform every child recursively, rebuild this
    /// node over the transformed children, then hand the rebuilt node to `f`.
    pub fn transform_up<E>(
        &self,
        f: &mut impl FnMut(RaExpr) -> Result<RaExpr, E>,
    ) -> Result<RaExpr, E> {
        let rebuilt = self.map_children(&mut |c| c.transform_up(f))?;
        f(rebuilt)
    }

    /// Pre-order read-only traversal.
    pub fn visit_pre(&self, f: &mut impl FnMut(&RaExpr)) {
        f(self);
        for c in self.children() {
            c.visit_pre(f);
        }
    }

    /// Whether any node in the tree satisfies the predicate.
    pub fn any_node(&self, pred: &mut impl FnMut(&RaExpr) -> bool) -> bool {
        let mut found = false;
        self.visit_pre(&mut |n| found |= pred(n));
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use std::convert::Infallible;

    fn sample() -> RaExpr {
        RaExpr::relation("r")
            .join(RaExpr::relation("s"), Condition::eq_cols("a", "b"))
            .select(Condition::eq_cols("a", "a"))
            .project(&["a"])
    }

    #[test]
    fn map_children_is_identity_with_cloning_callback() {
        let q = sample();
        let same: RaExpr = q.map_children(&mut |c| Ok::<_, Infallible>(c.clone())).unwrap();
        assert_eq!(q, same);
    }

    #[test]
    fn transform_up_visits_every_node_once() {
        let q = sample();
        let mut count = 0usize;
        let out: RaExpr = q
            .transform_up(&mut |n| {
                count += 1;
                Ok::<_, Infallible>(n)
            })
            .unwrap();
        assert_eq!(out, q);
        assert_eq!(count, q.size());
    }

    #[test]
    fn transform_up_rewrites_leaves_first() {
        // Replace every base relation r by s; the rebuilt parents must see it.
        let q = sample();
        let out: RaExpr = q
            .transform_up(&mut |n| {
                Ok::<_, Infallible>(match n {
                    RaExpr::Relation { ref name, .. } if name == "r" => RaExpr::relation("s"),
                    other => other,
                })
            })
            .unwrap();
        assert_eq!(out.base_relations(), vec!["s", "s"]);
    }

    #[test]
    fn transform_up_propagates_errors() {
        let q = sample();
        let r: Result<RaExpr, &str> = q.transform_up(&mut |n| {
            if matches!(n, RaExpr::Relation { .. }) {
                Err("no scans allowed")
            } else {
                Ok(n)
            }
        });
        assert_eq!(r, Err("no scans allowed"));
    }

    #[test]
    fn visit_pre_and_any_node() {
        let q = sample();
        let mut ops = Vec::new();
        q.visit_pre(&mut |n| {
            ops.push(std::mem::discriminant(n));
        });
        assert_eq!(ops.len(), q.size());
        assert!(q.any_node(&mut |n| matches!(n, RaExpr::Join { .. })));
        assert!(!q.any_node(&mut |n| matches!(n, RaExpr::Division { .. })));
    }
}
