//! Selection conditions.
//!
//! Conditions are positive/negative Boolean combinations of comparisons
//! between attributes and constants, the predicates `const(A)` / `null(A)`
//! (SQL's `IS NOT NULL` / `IS NULL`), `LIKE` patterns, `IN`-lists and
//! comparisons against black-box scalar subqueries (used for the aggregate
//! subquery of query Q2, exactly as the paper treats it).

use crate::expr::RaExpr;
use certus_data::compare::CmpOp;
use certus_data::Value;
use std::collections::BTreeSet;
use std::fmt;

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A column reference, possibly qualified (`"l1.l_suppkey"`).
    Col(String),
    /// A constant value.
    Const(Value),
    /// An uncorrelated scalar subquery, treated as an opaque constant `c` by
    /// the condition translations (paper, Section 7, "Translating additional
    /// features").
    Scalar(Box<RaExpr>),
}

impl Operand {
    /// The column name, if this operand is a column.
    pub fn as_col(&self) -> Option<&str> {
        match self {
            Operand::Col(c) => Some(c),
            _ => None,
        }
    }

    /// Whether the operand is a column reference.
    pub fn is_col(&self) -> bool {
        matches!(self, Operand::Col(_))
    }

    /// Apply a renaming function to column references.
    pub fn map_columns(&self, f: &mut impl FnMut(&str) -> String) -> Operand {
        match self {
            Operand::Col(c) => Operand::Col(f(c)),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Col(c) => write!(f, "{c}"),
            Operand::Const(v) => write!(f, "{v}"),
            Operand::Scalar(q) => write!(f, "({q})"),
        }
    }
}

/// A selection condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Binary comparison `left op right`.
    Cmp {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// `operand IS NULL` — the paper's `null(A)`.
    IsNull(Operand),
    /// `operand IS NOT NULL` — the paper's `const(A)`.
    IsNotNull(Operand),
    /// `operand [NOT] LIKE pattern`.
    Like {
        /// Matched operand.
        expr: Operand,
        /// SQL pattern with `%` and `_` wildcards.
        pattern: String,
        /// Whether the predicate is negated.
        negated: bool,
    },
    /// `operand [NOT] IN (v1, …, vn)` over a literal list.
    InList {
        /// Tested operand.
        expr: Operand,
        /// The literal values.
        list: Vec<Value>,
        /// Whether the predicate is negated.
        negated: bool,
    },
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// Conjunction of two conditions with trivial simplification.
    pub fn and(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::True, c) | (c, Condition::True) => c,
            (Condition::False, _) | (_, Condition::False) => Condition::False,
            (a, b) => Condition::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction of two conditions with trivial simplification.
    pub fn or(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::False, c) | (c, Condition::False) => c,
            (Condition::True, _) | (_, Condition::True) => Condition::True,
            (a, b) => Condition::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Logical negation (not pushed inward; see [`Condition::to_nnf`]).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Condition {
        match self {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Not(inner) => *inner,
            c => Condition::Not(Box::new(c)),
        }
    }

    /// Conjunction of an iterator of conditions.
    pub fn and_all(conds: impl IntoIterator<Item = Condition>) -> Condition {
        conds.into_iter().fold(Condition::True, |acc, c| acc.and(c))
    }

    /// Disjunction of an iterator of conditions.
    pub fn or_all(conds: impl IntoIterator<Item = Condition>) -> Condition {
        conds.into_iter().fold(Condition::False, |acc, c| acc.or(c))
    }

    /// Equality comparison between two columns.
    pub fn eq_cols(a: impl Into<String>, b: impl Into<String>) -> Condition {
        Condition::Cmp {
            left: Operand::Col(a.into()),
            op: CmpOp::Eq,
            right: Operand::Col(b.into()),
        }
    }

    /// Comparison between a column and a constant.
    pub fn cmp_const(col: impl Into<String>, op: CmpOp, value: Value) -> Condition {
        Condition::Cmp { left: Operand::Col(col.into()), op, right: Operand::Const(value) }
    }

    /// Push negations inward so that `Not` only remains around atoms that
    /// cannot be negated structurally (there are none in this language: every
    /// atom has a dual), producing negation normal form. The paper's
    /// translations assume selection conditions are "closed under negation,
    /// which can simply be propagated to atoms" (Section 2).
    pub fn to_nnf(&self) -> Condition {
        self.nnf(false)
    }

    fn nnf(&self, negate: bool) -> Condition {
        match self {
            Condition::True => {
                if negate {
                    Condition::False
                } else {
                    Condition::True
                }
            }
            Condition::False => {
                if negate {
                    Condition::True
                } else {
                    Condition::False
                }
            }
            Condition::Cmp { left, op, right } => Condition::Cmp {
                left: left.clone(),
                op: if negate { op.negate() } else { *op },
                right: right.clone(),
            },
            Condition::IsNull(x) => {
                if negate {
                    Condition::IsNotNull(x.clone())
                } else {
                    Condition::IsNull(x.clone())
                }
            }
            Condition::IsNotNull(x) => {
                if negate {
                    Condition::IsNull(x.clone())
                } else {
                    Condition::IsNotNull(x.clone())
                }
            }
            Condition::Like { expr, pattern, negated } => Condition::Like {
                expr: expr.clone(),
                pattern: pattern.clone(),
                negated: *negated != negate,
            },
            Condition::InList { expr, list, negated } => Condition::InList {
                expr: expr.clone(),
                list: list.clone(),
                negated: *negated != negate,
            },
            Condition::And(a, b) => {
                let (x, y) = (a.nnf(negate), b.nnf(negate));
                if negate {
                    x.or(y)
                } else {
                    x.and(y)
                }
            }
            Condition::Or(a, b) => {
                let (x, y) = (a.nnf(negate), b.nnf(negate));
                if negate {
                    x.and(y)
                } else {
                    x.or(y)
                }
            }
            Condition::Not(inner) => inner.nnf(!negate),
        }
    }

    /// Split a conjunction into its conjuncts (after flattening nested `And`s).
    pub fn conjuncts(&self) -> Vec<Condition> {
        match self {
            Condition::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            Condition::True => vec![],
            other => vec![other.clone()],
        }
    }

    /// Split a disjunction into its disjuncts (after flattening nested `Or`s).
    pub fn disjuncts(&self) -> Vec<Condition> {
        match self {
            Condition::Or(a, b) => {
                let mut out = a.disjuncts();
                out.extend(b.disjuncts());
                out
            }
            Condition::False => vec![],
            other => vec![other.clone()],
        }
    }

    /// Convert the condition to disjunctive normal form at the Boolean level
    /// (atoms untouched). Used by the OR-splitting rewrite of Section 7: a
    /// `NOT EXISTS (… WHERE φ)` with `φ = ∨ᵢ φᵢ` becomes a conjunction of
    /// `NOT EXISTS` blocks, one per disjunct.
    pub fn to_dnf(&self) -> Vec<Condition> {
        let nnf = self.to_nnf();
        Self::dnf_rec(&nnf)
    }

    fn dnf_rec(c: &Condition) -> Vec<Condition> {
        match c {
            Condition::Or(a, b) => {
                let mut out = Self::dnf_rec(a);
                out.extend(Self::dnf_rec(b));
                out
            }
            Condition::And(a, b) => {
                let left = Self::dnf_rec(a);
                let right = Self::dnf_rec(b);
                let mut out = Vec::with_capacity(left.len() * right.len());
                for l in &left {
                    for r in &right {
                        out.push(l.clone().and(r.clone()));
                    }
                }
                out
            }
            other => vec![other.clone()],
        }
    }

    /// The set of column names referenced by the condition (not including
    /// columns inside scalar subqueries, which are evaluated independently).
    pub fn columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        let mut add = |op: &Operand| {
            if let Operand::Col(c) = op {
                out.insert(c.clone());
            }
        };
        match self {
            Condition::True | Condition::False => {}
            Condition::Cmp { left, right, .. } => {
                add(left);
                add(right);
            }
            Condition::IsNull(x) | Condition::IsNotNull(x) => add(x),
            Condition::Like { expr, .. } => add(expr),
            Condition::InList { expr, .. } => add(expr),
            Condition::And(a, b) | Condition::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Condition::Not(inner) => inner.collect_columns(out),
        }
    }

    /// Apply a renaming function to every column reference.
    pub fn map_columns(&self, f: &mut impl FnMut(&str) -> String) -> Condition {
        match self {
            Condition::True => Condition::True,
            Condition::False => Condition::False,
            Condition::Cmp { left, op, right } => {
                Condition::Cmp { left: left.map_columns(f), op: *op, right: right.map_columns(f) }
            }
            Condition::IsNull(x) => Condition::IsNull(x.map_columns(f)),
            Condition::IsNotNull(x) => Condition::IsNotNull(x.map_columns(f)),
            Condition::Like { expr, pattern, negated } => Condition::Like {
                expr: expr.map_columns(f),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Condition::InList { expr, list, negated } => Condition::InList {
                expr: expr.map_columns(f),
                list: list.clone(),
                negated: *negated,
            },
            Condition::And(a, b) => a.map_columns(f).and(b.map_columns(f)),
            Condition::Or(a, b) => {
                Condition::Or(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Condition::Not(inner) => Condition::Not(Box::new(inner.map_columns(f))),
        }
    }

    /// Whether the condition belongs to the *positive* fragment: a positive
    /// Boolean combination of equalities, non-negated `LIKE`/`IN` and
    /// `const(A)` predicates. For such conditions SQL evaluation has
    /// correctness guarantees (Fact 2 of the paper).
    pub fn is_positive(&self) -> bool {
        match self {
            Condition::True | Condition::False => true,
            Condition::Cmp { op, .. } => *op == CmpOp::Eq,
            Condition::IsNotNull(_) => true,
            Condition::IsNull(_) => false,
            Condition::Like { negated, .. } => !negated,
            Condition::InList { negated, .. } => !negated,
            Condition::And(a, b) | Condition::Or(a, b) => a.is_positive() && b.is_positive(),
            Condition::Not(_) => false,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "TRUE"),
            Condition::False => write!(f, "FALSE"),
            Condition::Cmp { left, op, right } => write!(f, "{left} {op} {right}"),
            Condition::IsNull(x) => write!(f, "{x} IS NULL"),
            Condition::IsNotNull(x) => write!(f, "{x} IS NOT NULL"),
            Condition::Like { expr, pattern, negated } => {
                write!(f, "{expr} {}LIKE '{pattern}'", if *negated { "NOT " } else { "" })
            }
            Condition::InList { expr, list, negated } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Condition::And(a, b) => write!(f, "({a} AND {b})"),
            Condition::Or(a, b) => write!(f, "({a} OR {b})"),
            Condition::Not(inner) => write!(f, "NOT ({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_eq_b() -> Condition {
        Condition::eq_cols("a", "b")
    }

    fn b_neq_1() -> Condition {
        Condition::cmp_const("b", CmpOp::Neq, Value::Int(1))
    }

    #[test]
    fn and_or_simplification() {
        assert_eq!(Condition::True.and(a_eq_b()), a_eq_b());
        assert_eq!(Condition::False.and(a_eq_b()), Condition::False);
        assert_eq!(Condition::False.or(a_eq_b()), a_eq_b());
        assert_eq!(Condition::True.or(a_eq_b()), Condition::True);
    }

    #[test]
    fn nnf_propagates_to_atoms() {
        // ¬((A = B) ∨ (B ≠ 1)) ≡ (A ≠ B) ∧ (B = 1) — the paper's Section 2 example.
        let c = a_eq_b().or(b_neq_1()).not();
        let nnf = c.to_nnf();
        let expected = Condition::Cmp {
            left: Operand::Col("a".into()),
            op: CmpOp::Neq,
            right: Operand::Col("b".into()),
        }
        .and(Condition::cmp_const("b", CmpOp::Eq, Value::Int(1)));
        assert_eq!(nnf, expected);
    }

    #[test]
    fn nnf_is_involutive_on_double_negation() {
        let c = a_eq_b().and(b_neq_1());
        assert_eq!(c.clone().not().not().to_nnf(), c.to_nnf());
    }

    #[test]
    fn nnf_flips_null_predicates_and_like() {
        let c = Condition::IsNull(Operand::Col("x".into())).not();
        assert_eq!(c.to_nnf(), Condition::IsNotNull(Operand::Col("x".into())));
        let l = Condition::Like {
            expr: Operand::Col("p".into()),
            pattern: "%red%".into(),
            negated: false,
        }
        .not();
        assert_eq!(
            l.to_nnf(),
            Condition::Like {
                expr: Operand::Col("p".into()),
                pattern: "%red%".into(),
                negated: true
            }
        );
    }

    #[test]
    fn conjuncts_and_disjuncts_flatten() {
        let c = a_eq_b().and(b_neq_1()).and(Condition::IsNull(Operand::Col("x".into())));
        assert_eq!(c.conjuncts().len(), 3);
        let d = a_eq_b().or(b_neq_1()).or(Condition::True);
        // True absorbs the disjunction
        assert_eq!(d, Condition::True);
    }

    #[test]
    fn dnf_distributes() {
        // (p ∨ q) ∧ r → [p∧r, q∧r]
        let p = Condition::eq_cols("a", "b");
        let q = Condition::IsNull(Operand::Col("a".into()));
        let r = Condition::eq_cols("c", "d");
        let c = p.clone().or(q.clone()).and(r.clone());
        let dnf = c.to_dnf();
        assert_eq!(dnf.len(), 2);
        assert_eq!(dnf[0], p.and(r.clone()));
        assert_eq!(dnf[1], q.and(r));
    }

    #[test]
    fn dnf_of_negated_conjunction() {
        // ¬(a=b ∧ c=d) → [a≠b, c≠d]
        let c = Condition::eq_cols("a", "b").and(Condition::eq_cols("c", "d")).not();
        let dnf = c.to_dnf();
        assert_eq!(dnf.len(), 2);
    }

    #[test]
    fn columns_collection_and_renaming() {
        let c = a_eq_b().and(Condition::cmp_const("q.x", CmpOp::Gt, Value::Int(3)));
        let cols = c.columns();
        assert!(cols.contains("a") && cols.contains("b") && cols.contains("q.x"));
        let renamed = c.map_columns(&mut |s| format!("t.{s}"));
        assert!(renamed.columns().contains("t.q.x"));
    }

    #[test]
    fn positivity_check() {
        assert!(a_eq_b().is_positive());
        assert!(!b_neq_1().is_positive());
        assert!(!a_eq_b().not().is_positive());
        assert!(!Condition::IsNull(Operand::Col("x".into())).is_positive());
        assert!(Condition::IsNotNull(Operand::Col("x".into())).is_positive());
        assert!(a_eq_b().or(a_eq_b()).is_positive());
    }

    #[test]
    fn display_renders_sql_like_syntax() {
        let c = a_eq_b().and(Condition::IsNull(Operand::Col("x".into())));
        assert_eq!(c.to_string(), "(a = b AND x IS NULL)");
        let i = Condition::InList {
            expr: Operand::Col("n".into()),
            list: vec![Value::Int(1), Value::Int(2)],
            negated: true,
        };
        assert_eq!(i.to_string(), "n NOT IN (1, 2)");
    }
}
