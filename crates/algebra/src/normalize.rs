//! Normalization and desugaring of algebra expressions.
//!
//! The certain-answer translation of Figure 2 (the original translation of
//! \[22\], implemented in `certus-core::translate_naive`) is defined only on the
//! *core* operators: base relations, selection, projection, product, union,
//! intersection and difference. [`desugar_core`] rewrites the derived
//! operators (joins, semijoins, unification semijoins, division, distinct)
//! into that core. The improved Figure 3 translation does not need this and
//! operates on derived operators directly.

use crate::condition::Condition;
use crate::error::AlgebraError;
use crate::expr::{ProjCol, RaExpr};
use crate::schema_infer::{output_schema, Catalog};
use crate::Result;

/// Rewrite an expression to use only the core relational algebra operators
/// (σ, π, ×, ∪, ∩, −) plus base relations and literal relations.
///
/// * `Join(l, r, θ)` → `σ_θ(l × r)`
/// * `SemiJoin(l, r, θ)` → `π_l(σ_θ(l × r))`
/// * `AntiJoin(l, r, θ)` → `l − π_l(σ_θ(l × r))`
/// * `UnifySemiJoin` / `UnifyAntiSemiJoin` are kept (they are definable via a
///   unification condition `θ⇑`, but the paper keeps them as primitives and so
///   do we — the Figure 2 translation never produces them anyway).
/// * `Division(l, r)` → `π_K(l) − π_K((π_K(l) × r) − l)` where `K` are the
///   non-shared columns of `l` (the textbook expansion).
/// * `Distinct` disappears (set semantics).
/// * `Rename` is kept.
/// * `Aggregate` is rejected: it is outside relational algebra and outside the
///   scope of the Figure 2 translation.
pub fn desugar_core(expr: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
    match expr {
        RaExpr::Relation { .. } | RaExpr::Values { .. } => Ok(expr.clone()),
        RaExpr::Select { input, condition } => {
            Ok(desugar_core(input, catalog)?.select(condition.clone()))
        }
        RaExpr::Project { input, columns } => {
            Ok(desugar_core(input, catalog)?.project_cols(columns.clone()))
        }
        RaExpr::Product { left, right } => {
            Ok(desugar_core(left, catalog)?.product(desugar_core(right, catalog)?))
        }
        RaExpr::Join { left, right, condition } => Ok(desugar_core(left, catalog)?
            .product(desugar_core(right, catalog)?)
            .select(condition.clone())),
        RaExpr::Union { left, right } => {
            Ok(desugar_core(left, catalog)?.union(desugar_core(right, catalog)?))
        }
        RaExpr::Intersect { left, right } => {
            Ok(desugar_core(left, catalog)?.intersect(desugar_core(right, catalog)?))
        }
        RaExpr::Difference { left, right } => {
            Ok(desugar_core(left, catalog)?.difference(desugar_core(right, catalog)?))
        }
        RaExpr::SemiJoin { left, right, condition } => {
            let l = desugar_core(left, catalog)?;
            let r = desugar_core(right, catalog)?;
            Ok(semijoin_expansion(&l, &r, condition, catalog)?)
        }
        RaExpr::AntiJoin { left, right, condition } => {
            let l = desugar_core(left, catalog)?;
            let r = desugar_core(right, catalog)?;
            let semi = semijoin_expansion(&l, &r, condition, catalog)?;
            Ok(l.difference(semi))
        }
        RaExpr::UnifySemiJoin { left, right } => {
            Ok(desugar_core(left, catalog)?.unify_semi_join(desugar_core(right, catalog)?))
        }
        RaExpr::UnifyAntiSemiJoin { left, right } => {
            Ok(desugar_core(left, catalog)?.unify_anti_join(desugar_core(right, catalog)?))
        }
        RaExpr::Division { left, right } => {
            let l = desugar_core(left, catalog)?;
            let r = desugar_core(right, catalog)?;
            division_expansion(&l, &r, catalog)
        }
        RaExpr::Rename { input, columns } => Ok(RaExpr::Rename {
            input: Box::new(desugar_core(input, catalog)?),
            columns: columns.clone(),
        }),
        RaExpr::Distinct { input } => desugar_core(input, catalog),
        RaExpr::Aggregate { .. } => Err(AlgebraError::Unsupported(
            "aggregates cannot be desugared to core relational algebra".into(),
        )),
    }
}

/// `π_left(σ_θ(left × right))`.
fn semijoin_expansion(
    left: &RaExpr,
    right: &RaExpr,
    condition: &Condition,
    catalog: &dyn Catalog,
) -> Result<RaExpr> {
    let left_schema = output_schema(left, catalog)?;
    let cols: Vec<ProjCol> = left_schema.names().into_iter().map(ProjCol::named).collect();
    Ok(left.clone().product(right.clone()).select(condition.clone()).project_cols(cols))
}

/// Textbook expansion of division.
fn division_expansion(left: &RaExpr, right: &RaExpr, catalog: &dyn Catalog) -> Result<RaExpr> {
    let l_schema = output_schema(left, catalog)?;
    let r_schema = output_schema(right, catalog)?;
    let key_cols: Vec<ProjCol> = l_schema
        .attrs()
        .iter()
        .filter(|a| !r_schema.attrs().iter().any(|b| b.base_name() == a.base_name()))
        .map(|a| ProjCol::named(a.name.clone()))
        .collect();
    if key_cols.len() + r_schema.arity() != l_schema.arity() {
        return Err(AlgebraError::Malformed(
            "division requires the divisor's columns to be a subset of the dividend's".into(),
        ));
    }
    let keys = left.clone().project_cols(key_cols.clone());
    // All combinations that *should* be present.
    let universe = keys.clone().product(right.clone());
    // Align the column order of `left` to (keys, divisor columns).
    let mut aligned_cols: Vec<ProjCol> = key_cols.clone();
    for b in r_schema.attrs() {
        let src = l_schema
            .attrs()
            .iter()
            .find(|a| a.base_name() == b.base_name())
            .expect("checked above");
        aligned_cols.push(ProjCol::named(src.name.clone()));
    }
    let aligned_left = left.clone().project_cols(aligned_cols);
    // Missing combinations, projected back to the key columns.
    let key_names: Vec<ProjCol> =
        key_cols.iter().map(|c| ProjCol::named(c.output_name().to_string())).collect();
    let missing = universe.difference(aligned_left).project_cols(key_names);
    Ok(keys.difference(missing))
}

/// Whether an expression uses only core operators (after desugaring this
/// always holds, except for the unification semijoins which are kept).
pub fn is_core(expr: &RaExpr) -> bool {
    let self_ok = !matches!(
        expr,
        RaExpr::Join { .. }
            | RaExpr::SemiJoin { .. }
            | RaExpr::AntiJoin { .. }
            | RaExpr::Division { .. }
            | RaExpr::Distinct { .. }
            | RaExpr::Aggregate { .. }
    );
    self_ok && expr.children().iter().all(|c| is_core(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::eq;
    use crate::eval::eval;
    use crate::semantics::NullSemantics;
    use certus_data::builder::rel;
    use certus_data::{Database, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "takes",
            rel(
                &["student", "course"],
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(1), Value::Int(20)],
                    vec![Value::Int(2), Value::Int(10)],
                ],
            ),
        );
        db.insert_relation(
            "courses",
            rel(&["course"], vec![vec![Value::Int(10)], vec![Value::Int(20)]]),
        );
        db.insert_relation(
            "r",
            rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]),
        );
        db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(2)]]));
        db
    }

    #[test]
    fn desugared_join_agrees_with_join() {
        let db = db();
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b"));
        let d = desugar_core(&q, &db).unwrap();
        assert!(is_core(&d));
        assert_eq!(
            eval(&q, &db, NullSemantics::Sql).unwrap().sorted().tuples(),
            eval(&d, &db, NullSemantics::Sql).unwrap().sorted().tuples()
        );
    }

    #[test]
    fn desugared_antijoin_agrees_with_antijoin() {
        let db = db();
        let q = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        let d = desugar_core(&q, &db).unwrap();
        assert!(is_core(&d));
        let a = eval(&q, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&d, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn desugared_division_agrees_with_division() {
        let db = db();
        let q = RaExpr::relation("takes").divide(RaExpr::relation("courses"));
        let d = desugar_core(&q, &db).unwrap();
        assert!(is_core(&d));
        let a = eval(&q, &db, NullSemantics::Sql).unwrap().sorted();
        let b = eval(&d, &db, NullSemantics::Sql).unwrap().sorted();
        assert_eq!(a.tuples(), b.tuples());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn aggregates_are_rejected() {
        let db = db();
        let q = RaExpr::relation("r").aggregate(&[], vec![crate::expr::AggExpr::count_star("n")]);
        assert!(matches!(desugar_core(&q, &db), Err(AlgebraError::Unsupported(_))));
    }

    #[test]
    fn distinct_is_erased() {
        let db = db();
        let q = RaExpr::relation("r").distinct();
        let d = desugar_core(&q, &db).unwrap();
        assert_eq!(d, RaExpr::relation("r"));
    }
}
