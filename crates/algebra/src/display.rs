//! Textual rendering of algebra expressions (both a compact single-line form
//! and an indented tree used by `EXPLAIN`-style output).

use crate::expr::RaExpr;
use std::fmt;

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        as_single_line(self, f)
    }
}

fn as_single_line(expr: &RaExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match expr {
        RaExpr::Relation { name, alias } => match alias {
            Some(a) => write!(f, "{name} AS {a}"),
            None => write!(f, "{name}"),
        },
        RaExpr::Values { rows, .. } => write!(f, "VALUES[{} rows]", rows.len()),
        RaExpr::Select { input, condition } => write!(f, "σ[{condition}]({input})"),
        RaExpr::Project { input, columns } => {
            write!(f, "π[")?;
            for (i, c) in columns.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match &c.alias {
                    Some(a) => write!(f, "{} → {}", c.column, a)?,
                    None => write!(f, "{}", c.column)?,
                }
            }
            write!(f, "]({input})")
        }
        RaExpr::Product { left, right } => write!(f, "({left} × {right})"),
        RaExpr::Join { left, right, condition } => write!(f, "({left} ⋈[{condition}] {right})"),
        RaExpr::Union { left, right } => write!(f, "({left} ∪ {right})"),
        RaExpr::Intersect { left, right } => write!(f, "({left} ∩ {right})"),
        RaExpr::Difference { left, right } => write!(f, "({left} − {right})"),
        RaExpr::SemiJoin { left, right, condition } => write!(f, "({left} ⋉[{condition}] {right})"),
        RaExpr::AntiJoin { left, right, condition } => write!(f, "({left} ▷[{condition}] {right})"),
        RaExpr::UnifySemiJoin { left, right } => write!(f, "({left} ⋉⇑ {right})"),
        RaExpr::UnifyAntiSemiJoin { left, right } => write!(f, "({left} ⋉̸⇑ {right})"),
        RaExpr::Division { left, right } => write!(f, "({left} ÷ {right})"),
        RaExpr::Rename { input, columns } => write!(f, "ρ[{}]({input})", columns.join(", ")),
        RaExpr::Distinct { input } => write!(f, "δ({input})"),
        RaExpr::Aggregate { input, group_by, aggregates } => {
            write!(f, "γ[{}; ", group_by.join(", "))?;
            for (i, a) in aggregates.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match &a.column {
                    Some(c) => write!(f, "{}({c}) → {}", a.func, a.alias)?,
                    None => write!(f, "{} → {}", a.func, a.alias)?,
                }
            }
            write!(f, "]({input})")
        }
    }
}

/// Render an expression as an indented operator tree.
pub fn explain_tree(expr: &RaExpr) -> String {
    let mut out = String::new();
    render(expr, 0, &mut out);
    out
}

fn render(expr: &RaExpr, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let label = match expr {
        RaExpr::Relation { name, alias } => match alias {
            Some(a) => format!("Scan {name} AS {a}"),
            None => format!("Scan {name}"),
        },
        RaExpr::Values { rows, .. } => format!("Values ({} rows)", rows.len()),
        RaExpr::Select { condition, .. } => format!("Select [{condition}]"),
        RaExpr::Project { columns, .. } => format!(
            "Project [{}]",
            columns.iter().map(|c| c.output_name().to_string()).collect::<Vec<_>>().join(", ")
        ),
        RaExpr::Product { .. } => "Product".to_string(),
        RaExpr::Join { condition, .. } => format!("Join [{condition}]"),
        RaExpr::Union { .. } => "Union".to_string(),
        RaExpr::Intersect { .. } => "Intersect".to_string(),
        RaExpr::Difference { .. } => "Difference".to_string(),
        RaExpr::SemiJoin { condition, .. } => format!("SemiJoin [{condition}]"),
        RaExpr::AntiJoin { condition, .. } => format!("AntiJoin [{condition}]"),
        RaExpr::UnifySemiJoin { .. } => "UnifySemiJoin".to_string(),
        RaExpr::UnifyAntiSemiJoin { .. } => "UnifyAntiSemiJoin".to_string(),
        RaExpr::Division { .. } => "Division".to_string(),
        RaExpr::Rename { columns, .. } => format!("Rename [{}]", columns.join(", ")),
        RaExpr::Distinct { .. } => "Distinct".to_string(),
        RaExpr::Aggregate { group_by, aggregates, .. } => {
            format!("Aggregate [group by {}; {} aggregates]", group_by.join(", "), aggregates.len())
        }
    };
    out.push_str(&indent);
    out.push_str(&label);
    out.push('\n');
    for c in expr.children() {
        render(c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::eq;
    use crate::expr::RaExpr;

    #[test]
    fn display_single_line() {
        let q = RaExpr::relation("r").select(eq("a", "b")).project(&["a"]);
        assert_eq!(q.to_string(), "π[a](σ[a = b](r))");
    }

    #[test]
    fn display_difference_and_antijoin() {
        let q = RaExpr::relation("r").difference(RaExpr::relation("s"));
        assert_eq!(q.to_string(), "(r − s)");
        let a = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));
        assert!(a.to_string().contains("▷"));
    }

    #[test]
    fn explain_tree_indents_children() {
        let q = RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b")).distinct();
        let tree = explain_tree(&q);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines[0], "Distinct");
        assert!(lines[1].starts_with("  Join"));
        assert!(lines[2].starts_with("    Scan r"));
        assert!(lines[3].starts_with("    Scan s"));
    }
}
