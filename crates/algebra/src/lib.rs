//! # certus-algebra
//!
//! The relational-algebra layer of *certus*: the query IR on which the
//! certain-answer translations of the paper operate, together with a
//! reference (tuple-at-a-time) evaluator supporting both SQL's three-valued
//! semantics (`EvalSQL`) and naive evaluation.
//!
//! The IR ([`RaExpr`]) covers the paper's algebra — selection, projection,
//! product, union, intersection, difference — plus the derived operators the
//! paper relies on: theta-joins, (anti)semijoins, the *unification*
//! (anti)semijoins `⋉⇑` / `⋉̸⇑` of Definition 4, and division. Selection
//! conditions ([`Condition`]) are Boolean combinations of comparisons,
//! `IS [NOT] NULL` predicates (`const(A)` / `null(A)` in the paper), `LIKE`,
//! `IN`-lists and black-box scalar subqueries.

pub mod builder;
pub mod condition;
pub mod display;
pub mod error;
pub mod eval;
pub mod expr;
pub mod normalize;
pub mod schema_infer;
pub mod semantics;
pub mod visit;

pub use builder::{col, lit, table, values};
pub use condition::{Condition, Operand};
pub use error::AlgebraError;
pub use eval::{eval, Evaluator};
pub use expr::{AggExpr, AggFunc, ProjCol, RaExpr};
pub use semantics::NullSemantics;

/// Result alias for the algebra crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
