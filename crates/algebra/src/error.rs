//! Error type for the algebra layer.

use certus_data::DataError;
use std::fmt;

/// Errors produced while validating or evaluating relational algebra
/// expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// An error bubbled up from the data layer.
    Data(DataError),
    /// An expression is malformed (e.g. set operation over incompatible
    /// schemas, unification semijoin over different arities).
    Malformed(String),
    /// A scalar subquery returned more than one row or more than one column.
    ScalarSubquery(String),
    /// A feature is not supported by the operation that was attempted
    /// (e.g. desugaring an aggregate for the Figure-2 translation).
    Unsupported(String),
    /// Execution was cancelled cooperatively (deadline expired or the
    /// caller gave up); the partial work was discarded at a morsel boundary.
    Cancelled,
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Data(e) => write!(f, "{e}"),
            AlgebraError::Malformed(m) => write!(f, "malformed expression: {m}"),
            AlgebraError::ScalarSubquery(m) => write!(f, "scalar subquery error: {m}"),
            AlgebraError::Unsupported(m) => write!(f, "unsupported: {m}"),
            AlgebraError::Cancelled => write!(f, "execution cancelled"),
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for AlgebraError {
    fn from(e: DataError) -> Self {
        AlgebraError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_data_error() {
        let e: AlgebraError = DataError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_malformed() {
        let e = AlgebraError::Malformed("x".into());
        assert_eq!(e.to_string(), "malformed expression: x");
    }
}
