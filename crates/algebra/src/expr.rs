//! Relational algebra expressions.

use crate::condition::Condition;
use certus_data::{Schema, Tuple};
use std::fmt;

/// A projected column: a source column and an optional output name.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjCol {
    /// Source column (resolved against the input schema).
    pub column: String,
    /// Output name; defaults to the source column name.
    pub alias: Option<String>,
}

impl ProjCol {
    /// Project a column under its own name.
    pub fn named(column: impl Into<String>) -> Self {
        ProjCol { column: column.into(), alias: None }
    }

    /// Project a column under a new name.
    pub fn aliased(column: impl Into<String>, alias: impl Into<String>) -> Self {
        ProjCol { column: column.into(), alias: Some(alias.into()) }
    }

    /// The output name of this projection column.
    pub fn output_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.column)
    }
}

/// Aggregate functions supported by the engine. The certain-answer
/// translations treat aggregate subqueries as black boxes (paper, Section 7);
/// full certainty for aggregation is future work (Section 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(col)` — counts non-null values.
    Count,
    /// `SUM(col)` over non-null values; `NULL` on empty input.
    Sum,
    /// `AVG(col)` over non-null values; `NULL` on empty input.
    Avg,
    /// `MIN(col)` over non-null values; `NULL` on empty input.
    Min,
    /// `MAX(col)` over non-null values; `NULL` on empty input.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// A single aggregate computation within an [`RaExpr::Aggregate`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated column (`None` only for `COUNT(*)`).
    pub column: Option<String>,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Build an aggregate over a column.
    pub fn new(func: AggFunc, column: impl Into<String>, alias: impl Into<String>) -> Self {
        AggExpr { func, column: Some(column.into()), alias: alias.into() }
    }

    /// Build a `COUNT(*)` aggregate.
    pub fn count_star(alias: impl Into<String>) -> Self {
        AggExpr { func: AggFunc::CountStar, column: None, alias: alias.into() }
    }
}

/// A relational algebra expression over a database of named relations.
///
/// The *core* operators are those of the paper (Section 2): base relation,
/// selection, projection, product, union, intersection, difference. The
/// remaining variants are derived operators that the translations and the
/// SQL front-end use directly because they admit efficient physical plans:
/// theta-join, (anti)semijoin, the unification (anti)semijoin of Definition 4,
/// division, and a black-box aggregate.
#[derive(Debug, Clone, PartialEq)]
pub enum RaExpr {
    /// A base relation, optionally re-qualified under an alias (scanning `R`
    /// under alias `x` yields attributes `x.a` for every attribute `a` of `R`).
    Relation {
        /// Table name in the database.
        name: String,
        /// Optional alias used to qualify attribute names.
        alias: Option<String>,
    },
    /// A literal relation (used for parameters and unit tests).
    Values {
        /// Schema of the literal relation.
        schema: Schema,
        /// Its tuples.
        rows: Vec<Tuple>,
    },
    /// Selection `σ_θ(input)`.
    Select {
        /// Input expression.
        input: Box<RaExpr>,
        /// Selection condition.
        condition: Condition,
    },
    /// Projection `π_cols(input)` (set semantics: duplicates are removed).
    Project {
        /// Input expression.
        input: Box<RaExpr>,
        /// Output columns.
        columns: Vec<ProjCol>,
    },
    /// Cartesian product.
    Product {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
    /// Theta join (`σ_θ(left × right)`, kept as a single node so physical
    /// planning can pick join algorithms).
    Join {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
        /// Join condition.
        condition: Condition,
    },
    /// Set union.
    Union {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
    /// Set intersection.
    Intersect {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
    /// Set difference.
    Difference {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
    /// Semijoin `left ⋉_θ right`: tuples of `left` with at least one θ-match
    /// in `right` (the image of `EXISTS` subqueries).
    SemiJoin {
        /// Left input (preserved side).
        left: Box<RaExpr>,
        /// Right input (probe side).
        right: Box<RaExpr>,
        /// Matching condition over the concatenated schema.
        condition: Condition,
    },
    /// Anti-semijoin `left ▷_θ right`: tuples of `left` with no θ-match in
    /// `right` (the image of `NOT EXISTS` subqueries).
    AntiJoin {
        /// Left input (preserved side).
        left: Box<RaExpr>,
        /// Right input (probe side).
        right: Box<RaExpr>,
        /// Matching condition over the concatenated schema.
        condition: Condition,
    },
    /// Unification semijoin `left ⋉⇑ right` (Definition 4): tuples of `left`
    /// that unify with some tuple of `right`. Both sides must have the same
    /// arity.
    UnifySemiJoin {
        /// Left input (preserved side).
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
    /// Unification anti-semijoin `left ⋉̸⇑ right`: tuples of `left` that unify
    /// with no tuple of `right`.
    UnifyAntiSemiJoin {
        /// Left input (preserved side).
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
    /// Relational division `left ÷ right`: tuples over the non-shared columns
    /// of `left` that appear combined with *every* tuple of `right`
    /// ("students taking all courses").
    Division {
        /// Dividend.
        left: Box<RaExpr>,
        /// Divisor (its columns must be a subset of the dividend's, matched by
        /// unqualified name).
        right: Box<RaExpr>,
    },
    /// Rename the output columns.
    Rename {
        /// Input expression.
        input: Box<RaExpr>,
        /// New column names (must match the input arity).
        columns: Vec<String>,
    },
    /// Duplicate elimination (projection already deduplicates; this node lets
    /// the SQL front-end express `SELECT DISTINCT *`).
    Distinct {
        /// Input expression.
        input: Box<RaExpr>,
    },
    /// Grouping and aggregation (black box w.r.t. the certainty translations).
    Aggregate {
        /// Input expression.
        input: Box<RaExpr>,
        /// Grouping columns.
        group_by: Vec<String>,
        /// Aggregates to compute.
        aggregates: Vec<AggExpr>,
    },
}

impl RaExpr {
    /// Scan a base relation under its own name.
    pub fn relation(name: impl Into<String>) -> RaExpr {
        RaExpr::Relation { name: name.into(), alias: None }
    }

    /// Scan a base relation under an alias.
    pub fn relation_as(name: impl Into<String>, alias: impl Into<String>) -> RaExpr {
        RaExpr::Relation { name: name.into(), alias: Some(alias.into()) }
    }

    /// Selection.
    pub fn select(self, condition: Condition) -> RaExpr {
        RaExpr::Select { input: Box::new(self), condition }
    }

    /// Projection onto named columns.
    pub fn project(self, columns: &[&str]) -> RaExpr {
        RaExpr::Project {
            input: Box::new(self),
            columns: columns.iter().map(|c| ProjCol::named(*c)).collect(),
        }
    }

    /// Projection with explicit [`ProjCol`]s.
    pub fn project_cols(self, columns: Vec<ProjCol>) -> RaExpr {
        RaExpr::Project { input: Box::new(self), columns }
    }

    /// Cartesian product.
    pub fn product(self, other: RaExpr) -> RaExpr {
        RaExpr::Product { left: Box::new(self), right: Box::new(other) }
    }

    /// Theta join.
    pub fn join(self, other: RaExpr, condition: Condition) -> RaExpr {
        RaExpr::Join { left: Box::new(self), right: Box::new(other), condition }
    }

    /// Union.
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union { left: Box::new(self), right: Box::new(other) }
    }

    /// Intersection.
    pub fn intersect(self, other: RaExpr) -> RaExpr {
        RaExpr::Intersect { left: Box::new(self), right: Box::new(other) }
    }

    /// Difference.
    pub fn difference(self, other: RaExpr) -> RaExpr {
        RaExpr::Difference { left: Box::new(self), right: Box::new(other) }
    }

    /// Semijoin.
    pub fn semi_join(self, other: RaExpr, condition: Condition) -> RaExpr {
        RaExpr::SemiJoin { left: Box::new(self), right: Box::new(other), condition }
    }

    /// Anti-semijoin.
    pub fn anti_join(self, other: RaExpr, condition: Condition) -> RaExpr {
        RaExpr::AntiJoin { left: Box::new(self), right: Box::new(other), condition }
    }

    /// Unification semijoin.
    pub fn unify_semi_join(self, other: RaExpr) -> RaExpr {
        RaExpr::UnifySemiJoin { left: Box::new(self), right: Box::new(other) }
    }

    /// Unification anti-semijoin.
    pub fn unify_anti_join(self, other: RaExpr) -> RaExpr {
        RaExpr::UnifyAntiSemiJoin { left: Box::new(self), right: Box::new(other) }
    }

    /// Division.
    pub fn divide(self, other: RaExpr) -> RaExpr {
        RaExpr::Division { left: Box::new(self), right: Box::new(other) }
    }

    /// Rename output columns.
    pub fn rename(self, columns: &[&str]) -> RaExpr {
        RaExpr::Rename {
            input: Box::new(self),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Duplicate elimination.
    pub fn distinct(self) -> RaExpr {
        RaExpr::Distinct { input: Box::new(self) }
    }

    /// Grouping and aggregation.
    pub fn aggregate(self, group_by: &[&str], aggregates: Vec<AggExpr>) -> RaExpr {
        RaExpr::Aggregate {
            input: Box::new(self),
            group_by: group_by.iter().map(|c| c.to_string()).collect(),
            aggregates,
        }
    }

    /// Immediate children of this node.
    pub fn children(&self) -> Vec<&RaExpr> {
        match self {
            RaExpr::Relation { .. } | RaExpr::Values { .. } => vec![],
            RaExpr::Select { input, .. }
            | RaExpr::Project { input, .. }
            | RaExpr::Rename { input, .. }
            | RaExpr::Distinct { input }
            | RaExpr::Aggregate { input, .. } => vec![input],
            RaExpr::Product { left, right }
            | RaExpr::Join { left, right, .. }
            | RaExpr::Union { left, right }
            | RaExpr::Intersect { left, right }
            | RaExpr::Difference { left, right }
            | RaExpr::SemiJoin { left, right, .. }
            | RaExpr::AntiJoin { left, right, .. }
            | RaExpr::UnifySemiJoin { left, right }
            | RaExpr::UnifyAntiSemiJoin { left, right }
            | RaExpr::Division { left, right } => vec![left, right],
        }
    }

    /// Number of operator nodes in the expression tree.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Names of all base relations referenced (with duplicates, pre-order).
    pub fn base_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations<'a>(&'a self, out: &mut Vec<&'a str>) {
        if let RaExpr::Relation { name, .. } = self {
            out.push(name);
        }
        for c in self.children() {
            c.collect_relations(out);
        }
    }

    /// Whether the expression belongs to the *positive* fragment of relational
    /// algebra: no difference, no anti-joins, and only positive selection /
    /// join conditions. Naive evaluation computes exactly the certain answers
    /// with nulls on this fragment (Fact 1), and SQL evaluation has
    /// correctness guarantees on it (Fact 2).
    pub fn is_positive(&self) -> bool {
        let cond_ok = match self {
            RaExpr::Select { condition, .. }
            | RaExpr::Join { condition, .. }
            | RaExpr::SemiJoin { condition, .. } => condition.is_positive(),
            RaExpr::Difference { .. }
            | RaExpr::AntiJoin { .. }
            | RaExpr::UnifyAntiSemiJoin { .. } => false,
            _ => true,
        };
        cond_ok && self.children().iter().all(|c| c.is_positive())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;

    #[test]
    fn builder_methods_compose() {
        let q = RaExpr::relation("r").select(Condition::eq_cols("a", "b")).project(&["a"]);
        assert_eq!(q.size(), 3);
        assert_eq!(q.base_relations(), vec!["r"]);
    }

    #[test]
    fn children_cover_all_variants() {
        let r = RaExpr::relation("r");
        let s = RaExpr::relation("s");
        let two_kids = r.clone().join(s.clone(), Condition::True);
        assert_eq!(two_kids.children().len(), 2);
        let one_kid = r.clone().distinct();
        assert_eq!(one_kid.children().len(), 1);
        assert!(r.children().is_empty());
    }

    #[test]
    fn positivity_of_expressions() {
        let r = RaExpr::relation("r");
        let s = RaExpr::relation("s");
        assert!(r.clone().select(Condition::eq_cols("a", "b")).is_positive());
        assert!(!r.clone().difference(s.clone()).is_positive());
        assert!(!r.clone().anti_join(s.clone(), Condition::eq_cols("a", "b")).is_positive());
        assert!(!r.clone().select(Condition::eq_cols("a", "b").not()).is_positive());
        assert!(r.clone().product(s).project(&["a"]).is_positive());
    }

    #[test]
    fn projection_output_names() {
        assert_eq!(ProjCol::named("x").output_name(), "x");
        assert_eq!(ProjCol::aliased("x", "y").output_name(), "y");
    }

    #[test]
    fn base_relations_are_collected_in_preorder() {
        let q = RaExpr::relation("a").product(RaExpr::relation("b").union(RaExpr::relation("c")));
        assert_eq!(q.base_relations(), vec!["a", "b", "c"]);
    }

    #[test]
    fn agg_constructors() {
        let a = AggExpr::new(AggFunc::Avg, "c_acctbal", "avg_bal");
        assert_eq!(a.column.as_deref(), Some("c_acctbal"));
        let c = AggExpr::count_star("n");
        assert_eq!(c.column, None);
        assert_eq!(AggFunc::CountStar.to_string(), "COUNT(*)");
    }
}
