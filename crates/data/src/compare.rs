//! Comparison semantics over values with nulls.
//!
//! Two evaluation regimes are implemented (paper, Section 2):
//!
//! * **SQL three-valued comparisons** ([`sql_cmp`]): any comparison touching a
//!   null yields [`Truth::Unknown`]; constants are compared by value (numeric
//!   types are mutually comparable).
//! * **Naive comparisons** ([`naive_cmp`]): nulls are treated as ordinary
//!   domain elements — `⊥ᵢ = ⊥ᵢ` is true, `⊥ᵢ = ⊥ⱼ` (i ≠ j) and `⊥ᵢ = c` are
//!   false. Order comparisons involving a null are false (naive evaluation is
//!   only guaranteed correct for positive queries with equality, Fact 1).

use crate::truth::Truth;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Binary comparison operators of the SQL fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its arguments swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the operator (`NOT (a op b)` ⇔ `a op.negate() b`
    /// on constants).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Neq,
            CmpOp::Neq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Apply the operator to an [`Ordering`] between two constants.
    pub fn apply(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Neq => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Compare two *constant* values semantically. Numeric types (`Int`,
/// `Decimal`, `Float`) are mutually comparable; other cross-type comparisons
/// fall back to the syntactic total order. Returns `None` if either value is
/// a null (callers decide how to interpret that).
pub fn const_ordering(a: &Value, b: &Value) -> Option<Ordering> {
    if a.is_null() || b.is_null() {
        return None;
    }
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        (Value::Date(x), Value::Date(y)) => Some(x.cmp(y)),
        _ => {
            // Numeric comparison when both sides are numeric.
            if let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) {
                return x.partial_cmp(&y).or(Some(Ordering::Equal));
            }
            Some(a.cmp(b))
        }
    }
}

/// SQL three-valued comparison: `Unknown` if either operand is a null,
/// otherwise the semantic comparison of the constants.
pub fn sql_cmp(a: &Value, op: CmpOp, b: &Value) -> Truth {
    match const_ordering(a, b) {
        None => Truth::Unknown,
        Some(ord) => Truth::from_bool(op.apply(ord)),
    }
}

/// SQL three-valued equality.
pub fn sql_eq(a: &Value, b: &Value) -> Truth {
    sql_cmp(a, CmpOp::Eq, b)
}

/// Naive (two-valued) comparison: nulls are ordinary values. Equality is
/// syntactic (`⊥ᵢ = ⊥ᵢ` holds, `⊥ᵢ = ⊥ⱼ` and `⊥ᵢ = c` do not); order
/// comparisons involving at least one null are false except when both sides
/// are the *same* null and the operator is reflexive (`<=`, `>=`, `=`).
pub fn naive_cmp(a: &Value, op: CmpOp, b: &Value) -> bool {
    if a.is_null() || b.is_null() {
        let same = a == b;
        return match op {
            CmpOp::Eq | CmpOp::Le | CmpOp::Ge => same,
            CmpOp::Neq => !same && (a.is_null() != b.is_null() || a != b),
            CmpOp::Lt | CmpOp::Gt => false,
        };
    }
    match const_ordering(a, b) {
        Some(ord) => op.apply(ord),
        None => false,
    }
}

/// Naive (two-valued) equality: syntactic equality of values.
pub fn naive_eq(a: &Value, b: &Value) -> bool {
    naive_cmp(a, CmpOp::Eq, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::null::NullId;

    fn n(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    #[test]
    fn sql_null_comparisons_are_unknown() {
        assert_eq!(sql_eq(&n(1), &Value::Int(1)), Truth::Unknown);
        assert_eq!(sql_eq(&n(1), &n(1)), Truth::Unknown);
        assert_eq!(sql_cmp(&n(1), CmpOp::Lt, &Value::Int(3)), Truth::Unknown);
    }

    #[test]
    fn sql_constant_comparisons() {
        assert_eq!(sql_eq(&Value::Int(1), &Value::Int(1)), Truth::True);
        assert_eq!(sql_eq(&Value::Int(1), &Value::Int(2)), Truth::False);
        assert_eq!(sql_cmp(&Value::Int(1), CmpOp::Lt, &Value::Int(2)), Truth::True);
        assert_eq!(sql_cmp(&Value::str("a"), CmpOp::Lt, &Value::str("b")), Truth::True);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(sql_eq(&Value::Int(1), &Value::Decimal(100)), Truth::True);
        assert_eq!(sql_cmp(&Value::Decimal(150), CmpOp::Gt, &Value::Int(1)), Truth::True);
        assert_eq!(sql_eq(&Value::Float(2.0), &Value::Int(2)), Truth::True);
    }

    #[test]
    fn naive_null_equality_is_syntactic() {
        assert!(naive_eq(&n(1), &n(1)));
        assert!(!naive_eq(&n(1), &n(2)));
        assert!(!naive_eq(&n(1), &Value::Int(1)));
        assert!(naive_cmp(&n(1), CmpOp::Neq, &n(2)));
        assert!(naive_cmp(&n(1), CmpOp::Neq, &Value::Int(1)));
        assert!(!naive_cmp(&n(1), CmpOp::Neq, &n(1)));
    }

    #[test]
    fn naive_order_with_null_is_false() {
        assert!(!naive_cmp(&n(1), CmpOp::Lt, &Value::Int(5)));
        assert!(!naive_cmp(&Value::Int(5), CmpOp::Gt, &n(1)));
        assert!(naive_cmp(&n(1), CmpOp::Le, &n(1)));
    }

    #[test]
    fn op_flip_and_negate() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Neq);
        for op in [CmpOp::Eq, CmpOp::Neq, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.flip().flip(), op);
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn sql_date_comparisons() {
        let d1 = crate::value::date(1995, 1, 1);
        let d2 = crate::value::date(1996, 1, 1);
        assert_eq!(sql_cmp(&d1, CmpOp::Lt, &d2), Truth::True);
        assert_eq!(sql_cmp(&d2, CmpOp::Le, &d1), Truth::False);
    }
}
