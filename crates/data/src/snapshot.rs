//! Snapshot/epoch storage: many concurrent readers over one mutable database.
//!
//! A [`SnapshotStore`] holds the current [`Database`] behind an `Arc`.
//! Readers [`pin`](SnapshotStore::pin) the current state and keep executing
//! against it for as long as they hold the [`Snapshot`] — they are never
//! blocked by a writer and never observe a torn (partially applied) update.
//! Writers go through [`update`](SnapshotStore::update): one writer at a
//! time clones the database (cheap — relations are `Arc`-shared, see
//! [`Database`]), mutates the clone (copy-on-write per touched relation,
//! schema epoch bumped by the mutating accessors), and atomically publishes
//! the result as the new current snapshot.
//!
//! Because the epoch travels with the snapshot, everything keyed on the
//! schema epoch — the plan cache, statistics catalogs, prepared queries —
//! works unchanged: a prepared plan built against a pinned snapshot stays
//! valid for that snapshot, and executing it against a *newer* snapshot
//! surfaces the usual `StalePlan` epoch mismatch.

use crate::database::Database;
use certus_obs::metrics::{registry, Counter, Gauge};
use certus_obs::names;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shared pin accounting, owned by the store and referenced by every
/// outstanding [`Snapshot`] so drops decrement the live count even after the
/// store itself is gone.
#[derive(Debug)]
struct PinStats {
    taken: AtomicU64,
    live: AtomicU64,
    taken_metric: Arc<Counter>,
    live_metric: Arc<Gauge>,
}

/// The store: current database state plus a writer lock.
///
/// Reads are wait-free apart from a brief mutex on the `Arc` swap; writes
/// serialize against each other (single-writer) but never against readers.
#[derive(Debug)]
pub struct SnapshotStore {
    current: Mutex<Arc<Database>>,
    /// Serializes writers so `update` closures see a consistent base state.
    writer: Mutex<()>,
    pins: Arc<PinStats>,
}

/// A pinned, immutable view of the database at one schema epoch.
///
/// Dereferences to [`Database`]; clone-cheap (bumps the `Arc`). The live-pin
/// gauge drops when the last clone of a pin is dropped.
#[derive(Debug, Clone)]
pub struct Snapshot {
    db: Arc<Database>,
    guard: Arc<PinGuard>,
}

#[derive(Debug)]
struct PinGuard(Arc<PinStats>);

impl Drop for PinGuard {
    fn drop(&mut self) {
        let live = self.0.live.fetch_sub(1, Ordering::Relaxed) - 1;
        self.0.live_metric.set(live);
    }
}

impl SnapshotStore {
    /// Wrap a database as the initial snapshot.
    pub fn new(db: Database) -> Self {
        let reg = registry();
        SnapshotStore {
            current: Mutex::new(Arc::new(db)),
            writer: Mutex::new(()),
            pins: Arc::new(PinStats {
                taken: AtomicU64::new(0),
                live: AtomicU64::new(0),
                taken_metric: reg.counter(names::SERVER_SNAPSHOT_PINS),
                live_metric: reg.gauge(names::SERVER_SNAPSHOT_PINS_LIVE),
            }),
        }
    }

    /// Pin the current state. The returned [`Snapshot`] stays valid (and its
    /// relations stay untouched) regardless of later writes.
    pub fn pin(&self) -> Snapshot {
        let db = self.current.lock().expect("snapshot store poisoned").clone();
        self.pins.taken.fetch_add(1, Ordering::Relaxed);
        self.pins.taken_metric.incr();
        let live = self.pins.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.pins.live_metric.set(live);
        Snapshot { db, guard: Arc::new(PinGuard(self.pins.clone())) }
    }

    /// Schema epoch of the current snapshot.
    pub fn epoch(&self) -> u64 {
        self.current.lock().expect("snapshot store poisoned").schema_epoch()
    }

    /// Apply a mutation and publish the result as the new current snapshot.
    ///
    /// The closure receives a private clone of the current database; touched
    /// relations are copied on first write (`Arc::make_mut`), untouched ones
    /// stay shared with in-flight snapshots. Readers pinned before or during
    /// the update keep their old state; readers pinning after see the new
    /// one. Writers serialize against each other, never against readers.
    pub fn update<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        let _writer = self.writer.lock().expect("snapshot writer poisoned");
        let mut next: Database = (**self.current.lock().expect("snapshot store poisoned")).clone();
        let out = f(&mut next);
        *self.current.lock().expect("snapshot store poisoned") = Arc::new(next);
        out
    }

    /// Total snapshots pinned since the store was created.
    pub fn pins_taken(&self) -> u64 {
        self.pins.taken.load(Ordering::Relaxed)
    }

    /// Snapshots currently pinned (not yet dropped).
    pub fn live_pins(&self) -> u64 {
        self.pins.live.load(Ordering::Relaxed)
    }
}

impl Snapshot {
    /// The shared database handle — for building a `Session` over the
    /// snapshot without copying the data.
    pub fn database(&self) -> Arc<Database> {
        self.db.clone()
    }

    /// Schema epoch this snapshot was taken at.
    pub fn epoch(&self) -> u64 {
        self.db.schema_epoch()
    }

    /// Number of live pins sharing this snapshot's accounting (diagnostic).
    pub fn live_pins(&self) -> u64 {
        self.guard.0.live.load(Ordering::Relaxed)
    }
}

impl Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::rel;
    use crate::value::Value;

    fn store_with_r() -> SnapshotStore {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
        SnapshotStore::new(db)
    }

    #[test]
    fn pinned_snapshot_is_isolated_from_updates() {
        let store = store_with_r();
        let before = store.pin();
        let epoch_before = before.epoch();
        store.update(|db| {
            db.relation_mut("r").unwrap().insert_values(vec![Value::Int(2)]).unwrap();
        });
        // The pinned snapshot still sees the old contents and epoch…
        assert_eq!(before.relation("r").unwrap().len(), 1);
        assert_eq!(before.epoch(), epoch_before);
        // …while a fresh pin sees the update under a bumped epoch.
        let after = store.pin();
        assert_eq!(after.relation("r").unwrap().len(), 2);
        assert!(after.epoch() > epoch_before);
    }

    #[test]
    fn untouched_relations_stay_shared_across_snapshots() {
        let store = store_with_r();
        store.update(|db| {
            db.insert_relation("s", rel(&["x"], vec![vec![Value::Int(9)]]));
        });
        let a = store.pin();
        store.update(|db| {
            db.relation_mut("r").unwrap().insert_values(vec![Value::Int(3)]).unwrap();
        });
        let b = store.pin();
        // The touched relation was copy-on-written; the untouched one is the
        // very same allocation in both snapshots.
        assert!(!Arc::ptr_eq(&a.relation_shared("r").unwrap(), &b.relation_shared("r").unwrap()));
        assert!(Arc::ptr_eq(&a.relation_shared("s").unwrap(), &b.relation_shared("s").unwrap()));
    }

    #[test]
    fn pin_accounting_tracks_lifecycle() {
        let store = store_with_r();
        assert_eq!(store.pins_taken(), 0);
        assert_eq!(store.live_pins(), 0);
        let p1 = store.pin();
        let p2 = store.pin();
        let p3 = p2.clone(); // clones share one pin
        assert_eq!(store.pins_taken(), 2);
        assert_eq!(store.live_pins(), 2);
        drop(p2);
        assert_eq!(store.live_pins(), 2, "clone keeps the pin alive");
        drop(p3);
        assert_eq!(store.live_pins(), 1);
        drop(p1);
        assert_eq!(store.live_pins(), 0);
        assert_eq!(store.pins_taken(), 2);
    }

    #[test]
    fn update_returns_closure_result_and_serializes_epochs() {
        let store = store_with_r();
        let e0 = store.epoch();
        let n = store.update(|db| {
            db.relation_mut("r").unwrap().insert_values(vec![Value::Int(7)]).unwrap();
            db.relation("r").unwrap().len()
        });
        assert_eq!(n, 2);
        assert!(store.epoch() > e0);
    }
}
