//! Tuples: ordered sequences of values.

use crate::null::NullId;
use crate::valuation::Valuation;
use crate::value::Value;
use std::fmt;

/// A database tuple. Equality and hashing are syntactic (see [`Value`]),
/// which is what set semantics, hash joins and naive evaluation require.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Create a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// The empty (0-ary) tuple.
    pub const fn empty() -> Self {
        Tuple(Vec::new())
    }

    /// Number of values in the tuple.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the empty tuple.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the underlying values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Consume the tuple and return the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    /// The value at a position (panics if out of bounds — positions are
    /// validated against schemas before evaluation).
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Checked access to a value by position.
    pub fn try_get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }

    /// Concatenate two tuples (used by Cartesian product / join operators).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.len() + other.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }

    /// Project the tuple onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Whether the tuple contains any null value.
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }

    /// Whether the tuple consists of constants only.
    pub fn is_ground(&self) -> bool {
        !self.has_null()
    }

    /// The set of null ids occurring in the tuple (with duplicates removed,
    /// in order of first occurrence).
    pub fn null_ids(&self) -> Vec<NullId> {
        let mut out = Vec::new();
        for v in &self.0 {
            if let Value::Null(id) = v {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        }
        out
    }

    /// Apply a valuation to the tuple, replacing nulls with constants where
    /// the valuation is defined.
    pub fn apply(&self, v: &Valuation) -> Tuple {
        Tuple(self.0.iter().map(|x| v.apply_value(x)).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl std::ops::Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::null::NullId;

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn concat_and_project() {
        let a = t(vec![Value::Int(1), Value::Int(2)]);
        let b = t(vec![Value::str("x")]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.project(&[2, 0]), t(vec![Value::str("x"), Value::Int(1)]));
    }

    #[test]
    fn null_detection() {
        let g = t(vec![Value::Int(1), Value::Int(2)]);
        assert!(g.is_ground());
        let n = t(vec![Value::Int(1), Value::Null(NullId(3)), Value::Null(NullId(3))]);
        assert!(n.has_null());
        assert_eq!(n.null_ids(), vec![NullId(3)]);
    }

    #[test]
    fn display_roundtrips_values() {
        let x = t(vec![Value::Int(1), Value::str("a"), Value::Null(NullId(2))]);
        assert_eq!(x.to_string(), "(1, 'a', ⊥2)");
    }

    #[test]
    fn indexing_and_iteration() {
        let x = t(vec![Value::Int(10), Value::Int(20)]);
        assert_eq!(x[1], Value::Int(20));
        assert_eq!(x.try_get(5), None);
        let collected: Tuple = x.values().iter().cloned().collect();
        assert_eq!(collected, x);
    }

    #[test]
    fn empty_tuple() {
        let e = Tuple::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_ground());
    }
}
