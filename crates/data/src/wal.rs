//! Durable snapshot storage: a write-ahead log with full-snapshot
//! checkpoints and crash recovery.
//!
//! The in-memory [`SnapshotStore`] gives readers torn-free snapshots and
//! writers atomic publication — but a process crash loses everything. This
//! module adds the missing durability half:
//!
//! * **WAL.** Every write is encoded with the workspace codec
//!   ([`crate::codec`] — the same bytes the server's wire protocol uses),
//!   wrapped in a checksummed envelope (`u32` length, `u32` CRC-32,
//!   payload), appended to the live `wal-<seq>` file and `fsync`'d *before*
//!   the write is acknowledged. An acknowledged write therefore survives
//!   any subsequent crash.
//! * **Checkpoints.** Every `checkpoint_every` records the
//!   full database is written to `checkpoint-<seq+1>.tmp`, `fsync`'d,
//!   atomically renamed to `checkpoint-<seq+1>`, and a fresh empty WAL is
//!   started; only then are the previous checkpoint and WAL deleted.
//!   Recovery never observes a state with no valid checkpoint on disk.
//! * **Recovery.** [`recover`] loads the newest checkpoint whose checksum
//!   validates (falling back to an older one if the newest is damaged) and
//!   replays its WAL record by record. A torn or corrupt record — a crash
//!   mid-append leaves exactly that — *truncates* the log at that point
//!   instead of failing: the tail beyond the first invalid record was never
//!   acknowledged, so dropping it is the correct (and only safe) reading of
//!   the log.
//!
//! The recovery invariant, which the fault-injection tests below and the
//! `experiments chaos` harness check end to end: after a crash at any
//! moment, recovery yields a database containing **every acknowledged
//! write and no torn one**, at a schema epoch no older than the one the
//! crash interrupted.
//!
//! Fault-prone boundaries check the named failpoints [`FP_APPEND`],
//! [`FP_FSYNC`] and [`FP_CHECKPOINT`] (see [`certus_obs::failpoint`]), so
//! tests can force torn appends, fsync failures and crashed checkpoints
//! deterministically.

use crate::codec::{self, Reader};
use crate::database::{Database, TableDef};
use crate::snapshot::SnapshotStore;
use crate::tuple::Tuple;
use certus_obs::failpoint::{apply_delay, failpoints, FailAction};
use certus_obs::metrics::registry;
use certus_obs::{names, Timer};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Failpoint checked before writing a WAL record ([`FailAction::Torn`]
/// leaves a torn tail behind, modeling a crash mid-append).
pub const FP_APPEND: &str = "wal.append";
/// Failpoint checked before the durability `fsync` of an append.
pub const FP_FSYNC: &str = "wal.fsync";
/// Failpoint checked while writing a checkpoint (before the atomic rename).
pub const FP_CHECKPOINT: &str = "wal.checkpoint";

/// Upper bound on one record's payload (matches the server's frame cap):
/// a corrupt length prefix fails fast instead of allocating gigabytes.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Envelope overhead per record: `u32` length + `u32` CRC-32.
const ENVELOPE: usize = 8;

/// Magic + version prefix of a checkpoint payload.
const CHECKPOINT_MAGIC: u32 = 0x434b_5054; // "CKPT"
const CHECKPOINT_VERSION: u8 = 1;

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// The underlying filesystem failed.
    Io(std::io::Error),
    /// A write was rejected before touching the log (unknown table, arity
    /// mismatch, …) — the database and the log are unchanged.
    Data(String),
    /// An armed failpoint forced this operation to fail.
    Injected(&'static str),
    /// A previous torn append poisoned the log; the store must be reopened
    /// (recovering from disk) before accepting further writes.
    Poisoned,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::Data(m) => write!(f, "{m}"),
            WalError::Injected(p) => write!(f, "injected fault at {p}"),
            WalError::Poisoned => write!(f, "wal poisoned by a torn append; reopen the store"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result alias for durability operations.
pub type WalResult<T> = Result<T, WalError>;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven — no external dependency.

fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Record envelopes.

/// Wrap a payload in the on-disk envelope: `u32` LE length, `u32` LE
/// CRC-32 of the payload, payload bytes.
fn envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One step of scanning a buffer of envelope records.
enum Scan<'a> {
    /// A complete, checksum-valid record; `next` is the offset after it.
    Ok { payload: &'a [u8], next: usize },
    /// The buffer ends exactly at a record boundary.
    End,
    /// The bytes from the current offset on are torn or corrupt (short
    /// header, short payload, length over the cap, checksum mismatch).
    Torn,
}

/// Scan one envelope record at `at`.
fn scan_record(buf: &[u8], at: usize) -> Scan<'_> {
    if at == buf.len() {
        return Scan::End;
    }
    if buf.len() - at < ENVELOPE {
        return Scan::Torn;
    }
    let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Scan::Torn;
    }
    let start = at + ENVELOPE;
    let end = match start.checked_add(len as usize) {
        Some(end) if end <= buf.len() => end,
        _ => return Scan::Torn,
    };
    let payload = &buf[start..end];
    if crc32(payload) != crc {
        return Scan::Torn;
    }
    Scan::Ok { payload, next: end }
}

// ---------------------------------------------------------------------------
// WAL record payloads.

/// A logical WAL record. Encoded with the workspace codec; the only kind
/// today is the server's row append.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Append `rows` to `table` (the already-validated form of the server's
    /// `Insert` request).
    Insert {
        /// Target table.
        table: String,
        /// Rows appended, each matching the table's arity.
        rows: Vec<Tuple>,
    },
}

impl WalRecord {
    /// Encode to the codec byte form (tag, then fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Insert { table, rows } => {
                codec::put_u8(&mut out, 0);
                codec::put_str(&mut out, table);
                codec::put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    codec::put_tuple(&mut out, row);
                }
            }
        }
        out
    }

    /// Decode a payload produced by [`WalRecord::encode`].
    pub fn decode(payload: &[u8]) -> codec::CodecResult<WalRecord> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            0 => {
                let table = r.str()?;
                let n = r.len()?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(codec::get_tuple(&mut r)?);
                }
                WalRecord::Insert { table, rows }
            }
            other => return Err(codec::CodecError(format!("unknown wal record tag {other}"))),
        };
        r.finish()?;
        Ok(record)
    }

    /// Apply this record to a database (the replay half of recovery).
    fn apply(&self, db: &mut Database) -> crate::Result<()> {
        match self {
            WalRecord::Insert { table, rows } => {
                let rel = db.relation_mut(table)?;
                for row in rows {
                    rel.insert_values(row.values().to_vec())?;
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint encoding.

/// Encode the full database: magic, version, schema epoch, then every
/// table's definition (name, schema, primary key) and instance.
fn encode_database(db: &Database) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u32(&mut out, CHECKPOINT_MAGIC);
    codec::put_u8(&mut out, CHECKPOINT_VERSION);
    codec::put_u64(&mut out, db.schema_epoch());
    let defs: Vec<&TableDef> = db.table_defs().collect();
    codec::put_u32(&mut out, defs.len() as u32);
    for def in defs {
        codec::put_str(&mut out, &def.name);
        codec::put_schema(&mut out, &def.schema);
        codec::put_u32(&mut out, def.primary_key.len() as u32);
        for col in &def.primary_key {
            codec::put_str(&mut out, col);
        }
        let rel = db.relation(&def.name).expect("definition implies instance");
        codec::put_relation(&mut out, rel);
    }
    out
}

/// Decode a checkpoint payload back into a database (epoch included).
fn decode_database(payload: &[u8]) -> codec::CodecResult<Database> {
    let mut r = Reader::new(payload);
    if r.u32()? != CHECKPOINT_MAGIC {
        return Err(codec::CodecError("bad checkpoint magic".into()));
    }
    let version = r.u8()?;
    if version != CHECKPOINT_VERSION {
        return Err(codec::CodecError(format!("unknown checkpoint version {version}")));
    }
    let epoch = r.u64()?;
    let tables = r.len()?;
    let mut db = Database::new();
    for _ in 0..tables {
        let name = r.str()?;
        let schema = codec::get_schema(&mut r)?;
        let keys = r.len()?;
        let mut primary_key = Vec::with_capacity(keys);
        for _ in 0..keys {
            primary_key.push(r.str()?);
        }
        let rel = codec::get_relation(&mut r)?;
        let def = TableDef { name, schema: schema.shared(), primary_key };
        db.install_table(def, rel);
    }
    r.finish()?;
    db.set_schema_epoch(epoch);
    Ok(db)
}

// ---------------------------------------------------------------------------
// File naming.

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:016x}"))
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:016x}"))
}

/// Parse `<prefix>-<seq:016x>` file names back to sequence numbers.
fn parse_seq(name: &str, prefix: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_prefix('-')?;
    u64::from_str_radix(rest, 16).ok()
}

/// Best-effort directory fsync so renames and creations are themselves
/// durable (a no-op error on filesystems that refuse to sync directories).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

// ---------------------------------------------------------------------------
// Recovery.

/// The outcome of [`recover`].
pub struct Recovery {
    /// The recovered database: newest valid checkpoint + replayed WAL.
    pub db: Database,
    /// Sequence of the checkpoint recovery started from.
    pub seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Valid byte length of the WAL (the torn tail beyond it, if any, has
    /// been truncated away on disk).
    pub wal_len: u64,
    /// Whether a torn/corrupt tail was found and truncated.
    pub truncated: bool,
}

/// Recover the newest consistent database state from `dir`, truncating any
/// torn WAL tail in place. Returns `Ok(None)` when the directory holds no
/// checksum-valid checkpoint (fresh directory, or every checkpoint file is
/// damaged). Never panics on corrupt input: damaged checkpoints fall back
/// to older ones, damaged WAL suffixes are dropped.
pub fn recover(dir: &Path) -> WalResult<Option<Recovery>> {
    let reg = registry();
    let mut checkpoints: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_seq(name, "checkpoint") {
                checkpoints.push(seq);
            }
        }
    }
    checkpoints.sort_unstable();

    // Newest valid checkpoint wins; a damaged one (torn tmp never renamed
    // cannot occur, but bit rot can) falls back to its predecessor.
    let mut base: Option<(u64, Database)> = None;
    for &seq in checkpoints.iter().rev() {
        let bytes = fs::read(checkpoint_path(dir, seq))?;
        if let Scan::Ok { payload, next } = scan_record(&bytes, 0) {
            if next == bytes.len() {
                if let Ok(db) = decode_database(payload) {
                    base = Some((seq, db));
                    break;
                }
            }
        }
    }
    let Some((seq, mut db)) = base else {
        return Ok(None);
    };

    // Replay the checkpoint's WAL, stopping (and truncating) at the first
    // torn or undecodable record — everything beyond it was never
    // acknowledged.
    let path = wal_path(dir, seq);
    let (mut replayed, mut wal_len, mut truncated) = (0u64, 0u64, false);
    if path.exists() {
        let bytes = fs::read(&path)?;
        let mut at = 0usize;
        loop {
            match scan_record(&bytes, at) {
                Scan::Ok { payload, next } => match WalRecord::decode(payload) {
                    Ok(record) if record.apply(&mut db).is_ok() => {
                        replayed += 1;
                        at = next;
                    }
                    _ => {
                        truncated = true;
                        break;
                    }
                },
                Scan::End => break,
                Scan::Torn => {
                    truncated = true;
                    break;
                }
            }
        }
        wal_len = at as u64;
        if truncated {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(wal_len)?;
            file.sync_data()?;
            reg.counter(names::WAL_TORN_TAILS).incr();
        }
    }

    reg.counter(names::WAL_RECOVERIES).incr();
    reg.counter(names::WAL_RECOVERED_RECORDS).add(replayed);
    Ok(Some(Recovery { db, seq, replayed, wal_len, truncated }))
}

// ---------------------------------------------------------------------------
// The live WAL handle.

struct Wal {
    file: File,
    /// Bytes of durable, checksum-valid records (the append offset).
    len: u64,
    /// A torn append happened; no further writes until reopen.
    poisoned: bool,
}

impl Wal {
    fn open(path: &Path, valid_len: u64) -> WalResult<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .append(false)
            .write(true)
            .read(true)
            .open(path)?;
        // Recovery already truncated torn tails, but be defensive: never
        // append after bytes we have not validated.
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(Wal { file, len: valid_len, poisoned: false })
    }

    /// Append one payload and make it durable. On any failure the log is
    /// restored to its previous length when possible; a torn write that
    /// cannot be cleaned (modeling a crash) poisons the handle.
    fn append(&mut self, payload: &[u8]) -> WalResult<()> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let reg = registry();
        let record = envelope(payload);

        match apply_delay(failpoints().check(FP_APPEND)) {
            FailAction::Off => {}
            FailAction::Error => return Err(WalError::Injected(FP_APPEND)),
            FailAction::Torn(keep) => {
                // A crash mid-write: part of the record reaches the file and
                // nothing can clean it up. The handle is dead; recovery must
                // truncate this tail.
                let keep = keep.min(record.len());
                let _ = self.file.write_all(&record[..keep]);
                let _ = self.file.sync_data();
                self.poisoned = true;
                return Err(WalError::Injected(FP_APPEND));
            }
            FailAction::SlowMs(_) => unreachable!("apply_delay resolves slow actions"),
        }

        if let Err(e) = self.file.write_all(&record) {
            self.rewind();
            return Err(WalError::Io(e));
        }

        let fsync_ok = match apply_delay(failpoints().check(FP_FSYNC)) {
            FailAction::Off => self.file.sync_data().map_err(WalError::Io),
            _ => Err(WalError::Injected(FP_FSYNC)),
        };
        if let Err(e) = fsync_ok {
            // The record reached the OS but was never durable: take it back
            // out so an unacknowledged write can never resurface.
            self.rewind();
            return Err(e);
        }

        self.len += record.len() as u64;
        reg.counter(names::WAL_APPENDS).incr();
        reg.counter(names::WAL_APPEND_BYTES).add(record.len() as u64);
        reg.counter(names::WAL_FSYNCS).incr();
        Ok(())
    }

    /// Truncate back to the last durable record boundary after a failed
    /// append; if even that fails, poison the handle.
    fn rewind(&mut self) {
        let ok = self.file.set_len(self.len).is_ok()
            && self.file.seek(SeekFrom::Start(self.len)).is_ok();
        if !ok {
            self.poisoned = true;
        }
    }
}

// ---------------------------------------------------------------------------
// The durable store.

/// [`SnapshotStore`] plus durability: writes go through the WAL (fsync'd
/// before acknowledgement), checkpoints bound replay time, and
/// [`DurableStore::open`] recovers the pre-crash state from disk.
///
/// Readers are untouched: they pin snapshots from
/// [`DurableStore::snapshots`] exactly as before, wait-free with respect to
/// writers — durability adds cost to the write path only.
pub struct DurableStore {
    dir: PathBuf,
    store: Arc<SnapshotStore>,
    inner: Mutex<Inner>,
    checkpoint_every: u64,
}

struct Inner {
    wal: Wal,
    seq: u64,
    since_checkpoint: u64,
}

impl DurableStore {
    /// Open (or create) a durable store in `dir`. When the directory holds
    /// a valid checkpoint the on-disk state wins and `fallback` is ignored;
    /// a fresh (or unrecoverable) directory starts from `fallback`, which
    /// is checkpointed immediately so the no-valid-checkpoint window closes
    /// before any write is accepted. `checkpoint_every` is the number of
    /// WAL records after which the store folds the log into a fresh
    /// checkpoint (0 = never, for tests).
    pub fn open(dir: &Path, fallback: Database, checkpoint_every: u64) -> WalResult<DurableStore> {
        fs::create_dir_all(dir)?;
        // Sweep stale temp files from checkpoints interrupted mid-write.
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_str().is_some_and(|n| n.ends_with(".tmp")) {
                let _ = fs::remove_file(entry.path());
            }
        }

        let (db, seq, replayed, wal_len) = match recover(dir)? {
            Some(r) => (r.db, r.seq, r.replayed, r.wal_len),
            None => (fallback, 0, 0, 0),
        };

        let checkpoint = checkpoint_path(dir, seq);
        if !checkpoint.exists() {
            write_checkpoint(dir, seq, &db)?;
        }
        let wal = Wal::open(&wal_path(dir, seq), wal_len)?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            store: Arc::new(SnapshotStore::new(db)),
            inner: Mutex::new(Inner { wal, seq, since_checkpoint: replayed }),
            checkpoint_every,
        })
    }

    /// The snapshot store readers pin from (and the server executes over).
    pub fn snapshots(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The directory holding the checkpoint and WAL files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably append `rows` to `table` and publish the new snapshot.
    /// Returns the schema epoch after the write. The sequence is strict:
    /// validate (a bad row never reaches the log), WAL append + fsync (the
    /// write is now crash-proof), publish, acknowledge — so a returned
    /// `Ok` epoch *is* the durability guarantee.
    pub fn insert(&self, table: &str, rows: &[Tuple]) -> WalResult<u64> {
        let timer = Timer::start();
        let mut inner = self.inner.lock().expect("durable store poisoned");

        // Validate against the current snapshot; writers are serialized by
        // the lock above, so nothing can invalidate this between the check
        // and the publish below.
        let snapshot = self.store.pin();
        let mut scratch =
            snapshot.relation(table).map_err(|e| WalError::Data(e.to_string()))?.clone();
        for row in rows {
            scratch
                .insert_values(row.values().to_vec())
                .map_err(|e| WalError::Data(e.to_string()))?;
        }

        let record = WalRecord::Insert { table: table.to_string(), rows: rows.to_vec() };
        inner.wal.append(&record.encode())?;

        let epoch = self.store.update(|db| {
            *db.relation_mut(table).expect("validated above") = scratch;
            db.schema_epoch()
        });

        inner.since_checkpoint += 1;
        if self.checkpoint_every > 0 && inner.since_checkpoint >= self.checkpoint_every {
            // Checkpoint failure is not a write failure: the record above is
            // durable in the current WAL either way; the fold just retries
            // after the next write.
            let _ = self.fold_into_checkpoint(&mut inner);
        }
        registry().histogram(names::WAL_APPEND_NS).record(timer.elapsed_ns());
        Ok(epoch)
    }

    /// Force a checkpoint now (folds the WAL into a fresh full snapshot).
    pub fn checkpoint(&self) -> WalResult<()> {
        let mut inner = self.inner.lock().expect("durable store poisoned");
        self.fold_into_checkpoint(&mut inner)
    }

    /// Current WAL length in bytes (diagnostics and tests).
    pub fn wal_len(&self) -> u64 {
        self.inner.lock().expect("durable store poisoned").wal.len
    }

    fn fold_into_checkpoint(&self, inner: &mut Inner) -> WalResult<()> {
        let next = inner.seq + 1;
        let snapshot = self.store.pin();
        write_checkpoint(&self.dir, next, &snapshot)?;
        // The new checkpoint is durable; start its (empty) WAL and only then
        // retire the previous generation.
        let wal = Wal::open(&wal_path(&self.dir, next), 0)?;
        sync_dir(&self.dir);
        let _ = fs::remove_file(checkpoint_path(&self.dir, inner.seq));
        let _ = fs::remove_file(wal_path(&self.dir, inner.seq));
        inner.wal = wal;
        inner.seq = next;
        inner.since_checkpoint = 0;
        Ok(())
    }
}

/// Write `db` as `checkpoint-<seq>`: envelope to a temp file, fsync,
/// atomic rename, directory fsync. A crash at any offset leaves either the
/// previous state (temp never renamed) or the complete new checkpoint.
fn write_checkpoint(dir: &Path, seq: u64, db: &Database) -> WalResult<()> {
    let payload = encode_database(db);
    let record = envelope(&payload);
    let tmp = dir.join(format!("checkpoint-{seq:016x}.tmp"));

    let mut file = File::create(&tmp)?;
    match apply_delay(failpoints().check(FP_CHECKPOINT)) {
        FailAction::Off => file.write_all(&record)?,
        FailAction::Torn(keep) => {
            // Crash mid-checkpoint: a torn temp file that never gets
            // renamed. Recovery ignores it entirely.
            let keep = keep.min(record.len());
            let _ = file.write_all(&record[..keep]);
            let _ = file.sync_data();
            return Err(WalError::Injected(FP_CHECKPOINT));
        }
        FailAction::Error => return Err(WalError::Injected(FP_CHECKPOINT)),
        FailAction::SlowMs(_) => unreachable!("apply_delay resolves slow actions"),
    }
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, checkpoint_path(dir, seq))?;
    sync_dir(dir);
    let reg = registry();
    reg.counter(names::WAL_CHECKPOINTS).incr();
    reg.counter(names::WAL_FSYNCS).add(2);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::rel;
    use crate::value::Value;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("certus-wal-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed_db() -> Database {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a", "b"], vec![vec![Value::Int(1), Value::str("x")]]));
        db
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::str("w")])
    }

    fn rows_of(db: &Database) -> usize {
        db.relation("r").unwrap().len()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn acked_writes_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
            for i in 0..5 {
                store.insert("r", &[row(i)]).unwrap();
            }
            assert_eq!(rows_of(&store.snapshots().pin()), 6);
            // Dropped without checkpointing: reopen replays the WAL.
        }
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        let snap = store.snapshots().pin();
        assert_eq!(rows_of(&snap), 6, "all five acked inserts recovered");
        assert!(snap.epoch() > 0, "recovered epoch never rewinds to zero");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_fold_the_wal_and_retire_old_generations() {
        let dir = temp_dir("ckpt");
        let store = DurableStore::open(&dir, seed_db(), 2).unwrap();
        for i in 0..5 {
            store.insert("r", &[row(i)]).unwrap();
        }
        // Two checkpoints happened (after records 2 and 4); only the newest
        // generation's files remain, and the live WAL holds one record.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2, "one checkpoint + one wal, got {names:?}");
        drop(store);
        let store = DurableStore::open(&dir, Database::new(), 2).unwrap();
        assert_eq!(rows_of(&store.snapshots().pin()), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_writes_leave_log_and_state_untouched() {
        let dir = temp_dir("reject");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        let before = store.wal_len();
        // Wrong arity: validation fails before the WAL sees anything.
        let err = store.insert("r", &[Tuple::new(vec![Value::Int(1)])]);
        assert!(matches!(err, Err(WalError::Data(_))));
        let err = store.insert("missing", &[row(1)]);
        assert!(matches!(err, Err(WalError::Data(_))));
        assert_eq!(store.wal_len(), before);
        assert_eq!(rows_of(&store.snapshots().pin()), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_is_unacked_and_never_resurfaces() {
        let dir = temp_dir("torn");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        store.insert("r", &[row(1)]).unwrap();
        // The next append tears after 5 bytes — a crash mid-write.
        failpoints().arm(FP_APPEND, FailAction::Torn(5), 0, 1);
        let err = store.insert("r", &[row(2)]);
        failpoints().disarm(FP_APPEND);
        assert!(matches!(err, Err(WalError::Injected(_))));
        // The handle is poisoned: further writes refuse instead of stacking
        // records after a torn tail.
        assert!(matches!(store.insert("r", &[row(3)]), Err(WalError::Poisoned)));
        drop(store);
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        let snap = store.snapshots().pin();
        assert_eq!(rows_of(&snap), 2, "acked write present, torn write gone");
        // And the store keeps working after recovery truncated the tail.
        store.insert("r", &[row(4)]).unwrap();
        drop(store);
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        assert_eq!(rows_of(&store.snapshots().pin()), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_fsync_rolls_the_record_back() {
        let dir = temp_dir("fsync");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        failpoints().arm(FP_FSYNC, FailAction::Error, 0, 1);
        let err = store.insert("r", &[row(1)]);
        failpoints().disarm(FP_FSYNC);
        assert!(matches!(err, Err(WalError::Injected(_))));
        // The un-fsync'd record was rolled back: the log is clean and the
        // store accepts the retry.
        store.insert("r", &[row(1)]).unwrap();
        drop(store);
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        assert_eq!(rows_of(&store.snapshots().pin()), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_checkpoint_keeps_the_previous_generation() {
        let dir = temp_dir("ckpt-crash");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        for i in 0..3 {
            store.insert("r", &[row(i)]).unwrap();
        }
        failpoints().arm(FP_CHECKPOINT, FailAction::Torn(10), 0, 1);
        let err = store.checkpoint();
        failpoints().disarm(FP_CHECKPOINT);
        assert!(matches!(err, Err(WalError::Injected(_))));
        // Writes continue against the old generation…
        store.insert("r", &[row(9)]).unwrap();
        drop(store);
        // …and recovery sees checkpoint-0 + the full WAL (the torn temp
        // file is swept and ignored).
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        assert_eq!(rows_of(&store.snapshots().pin()), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The satellite fuzz: recovery over every truncation offset and every
    /// flipped byte of a real checkpoint + WAL directory must never panic,
    /// never lose an earlier record to a later corruption, and never
    /// resurrect bytes beyond the damage.
    #[test]
    fn recovery_survives_every_truncation_and_bit_flip() {
        let dir = temp_dir("fuzz-src");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        for i in 0..4 {
            store.insert("r", &[row(i)]).unwrap();
        }
        drop(store);
        let wal_file = wal_path(&dir, 0);
        let ckpt_file = checkpoint_path(&dir, 0);
        let wal_bytes = fs::read(&wal_file).unwrap();
        let ckpt_bytes = fs::read(&ckpt_file).unwrap();

        // Record boundaries, for asserting prefix semantics.
        let mut boundaries = vec![0usize];
        let mut at = 0usize;
        while let Scan::Ok { next, .. } = scan_record(&wal_bytes, at) {
            boundaries.push(next);
            at = next;
        }
        assert_eq!(boundaries.len(), 5, "four records + origin");

        let scratch = temp_dir("fuzz-run");
        fs::create_dir_all(&scratch).unwrap();
        let run = |wal: &[u8], ckpt: &[u8]| -> Option<usize> {
            fs::write(checkpoint_path(&scratch, 0), ckpt).unwrap();
            fs::write(wal_path(&scratch, 0), wal).unwrap();
            let recovered = recover(&scratch).unwrap();
            recovered.map(|r| rows_of(&r.db))
        };

        // Every truncation of the WAL recovers the longest whole-record
        // prefix — never an error, never a panic, never a partial record.
        for cut in 0..=wal_bytes.len() {
            let rows = run(&wal_bytes[..cut], &ckpt_bytes).expect("checkpoint is intact");
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(rows, 1 + whole, "truncation at {cut}");
        }

        // Every single-byte corruption of the WAL yields a prefix of the
        // records before the damaged one (CRC catches the flip).
        for i in 0..wal_bytes.len() {
            let mut bad = wal_bytes.clone();
            bad[i] ^= 0xFF;
            let rows = run(&bad, &ckpt_bytes).expect("checkpoint is intact");
            let damaged_record = boundaries.iter().filter(|&&b| b <= i).count() - 1;
            assert!(
                rows <= 1 + damaged_record,
                "flip at {i}: {rows} rows resurrected past record {damaged_record}"
            );
        }

        // Every single-byte corruption of the only checkpoint makes
        // recovery refuse (None) — cleanly, without panicking.
        for i in 0..ckpt_bytes.len() {
            let mut bad = ckpt_bytes.clone();
            bad[i] ^= 0xFF;
            assert!(run(&wal_bytes, &bad).is_none(), "corrupt checkpoint at byte {i}");
        }

        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&scratch).unwrap();
    }

    #[test]
    fn damaged_newest_checkpoint_falls_back_to_its_predecessor() {
        let dir = temp_dir("fallback");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        store.insert("r", &[row(1)]).unwrap();
        drop(store);
        // Forge a newer, corrupt checkpoint next to the valid generation 0.
        fs::write(checkpoint_path(&dir, 1), b"garbage that is not a checkpoint").unwrap();
        let recovered = recover(&dir).unwrap().expect("falls back");
        assert_eq!(recovered.seq, 0);
        assert_eq!(rows_of(&recovered.db), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_records_round_trip_and_reject_malformed() {
        let record = WalRecord::Insert { table: "r".into(), rows: vec![row(1), row(2)] };
        let bytes = record.encode();
        assert_eq!(WalRecord::decode(&bytes).unwrap(), record);
        for cut in 0..bytes.len() {
            assert!(WalRecord::decode(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(WalRecord::decode(&trailing).is_err());
        let mut bad_tag = bytes;
        bad_tag[0] = 9;
        assert!(WalRecord::decode(&bad_tag).is_err());
    }

    #[test]
    fn checkpoint_encoding_preserves_defs_and_epoch() {
        let mut db = Database::new();
        db.create_table(
            TableDef::new("keyed", crate::schema::Schema::of_names(&["k", "v"])).with_key(&["k"]),
        )
        .unwrap();
        db.relation_mut("keyed")
            .unwrap()
            .insert_values(vec![Value::Int(1), Value::str("a")])
            .unwrap();
        let payload = encode_database(&db);
        let back = decode_database(&payload).unwrap();
        assert_eq!(back.schema_epoch(), db.schema_epoch());
        assert_eq!(back.table_def("keyed").unwrap().primary_key, vec!["k"]);
        assert_eq!(back.relation("keyed").unwrap(), db.relation("keyed").unwrap());
    }
}
