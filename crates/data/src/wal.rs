//! Durable snapshot storage: a write-ahead log with full-snapshot
//! checkpoints and crash recovery.
//!
//! The in-memory [`SnapshotStore`] gives readers torn-free snapshots and
//! writers atomic publication — but a process crash loses everything. This
//! module adds the missing durability half:
//!
//! * **WAL.** Every write is encoded with the workspace codec
//!   ([`crate::codec`] — the same bytes the server's wire protocol uses),
//!   wrapped in a checksummed envelope (`u32` length, `u32` CRC-32,
//!   payload), appended to the live `wal-<seq>` file and `fsync`'d *before*
//!   the write is acknowledged. An acknowledged write therefore survives
//!   any subsequent crash.
//! * **Checkpoints.** Every `checkpoint_every` records the
//!   full database is written to `checkpoint-<seq+1>.tmp`, `fsync`'d,
//!   atomically renamed to `checkpoint-<seq+1>`, and a fresh empty WAL is
//!   started; only then are the previous checkpoint and WAL deleted.
//!   Recovery never observes a state with no valid checkpoint on disk.
//! * **Recovery.** [`recover`] loads the newest checkpoint whose checksum
//!   validates (falling back to an older one if the newest is damaged) and
//!   replays its WAL record by record. A torn or corrupt record — a crash
//!   mid-append leaves exactly that — *truncates* the log at that point
//!   instead of failing: the tail beyond the first invalid record was never
//!   acknowledged, so dropping it is the correct (and only safe) reading of
//!   the log.
//!
//! The recovery invariant, which the fault-injection tests below and the
//! `experiments chaos` harness check end to end: after a crash at any
//! moment, recovery yields a database containing **every acknowledged
//! write and no torn one**, at a schema epoch no older than the one the
//! crash interrupted.
//!
//! Fault-prone boundaries check the named failpoints [`FP_APPEND`],
//! [`FP_FSYNC`] and [`FP_CHECKPOINT`] (see [`certus_obs::failpoint`]), so
//! tests can force torn appends, fsync failures and crashed checkpoints
//! deterministically.
//!
//! **Replication hooks.** The same checksummed log doubles as a replication
//! stream: a primary reads record-aligned byte chunks with
//! [`DurableStore::read_chunk`] (plus [`DurableStore::checkpoint_data`] for
//! bootstraps and [`DurableStore::last_rotation`] for fold hand-off), and a
//! replica ingests them with [`DurableStore::apply_records`],
//! [`DurableStore::install_checkpoint`] and [`DurableStore::rotate_to`] —
//! every applied batch is fsync'd locally before it is acknowledged, so
//! fsync-before-ack extends across the wire.

use crate::codec::{self, Reader};
use crate::database::{Database, TableDef};
use crate::snapshot::SnapshotStore;
use crate::tuple::Tuple;
use certus_obs::failpoint::{apply_delay, failpoints, FailAction};
use certus_obs::metrics::registry;
use certus_obs::{names, Timer};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Failpoint checked before writing a WAL record ([`FailAction::Torn`]
/// leaves a torn tail behind, modeling a crash mid-append).
pub const FP_APPEND: &str = "wal.append";
/// Failpoint checked before the durability `fsync` of an append.
pub const FP_FSYNC: &str = "wal.fsync";
/// Failpoint checked while writing a checkpoint (before the atomic rename).
pub const FP_CHECKPOINT: &str = "wal.checkpoint";

/// Upper bound on one record's payload (matches the server's frame cap):
/// a corrupt length prefix fails fast instead of allocating gigabytes.
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// Envelope overhead per record: `u32` length + `u32` CRC-32.
const ENVELOPE: usize = 8;

/// Magic + version prefix of a checkpoint payload.
const CHECKPOINT_MAGIC: u32 = 0x434b_5054; // "CKPT"
const CHECKPOINT_VERSION: u8 = 1;

/// Errors surfaced by the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// The underlying filesystem failed.
    Io(std::io::Error),
    /// A write was rejected before touching the log (unknown table, arity
    /// mismatch, …) — the database and the log are unchanged.
    Data(String),
    /// An armed failpoint forced this operation to fail.
    Injected(&'static str),
    /// A previous torn append poisoned the log; the store must be reopened
    /// (recovering from disk) before accepting further writes.
    Poisoned,
    /// The directory holds checkpoint files but none of them validates.
    /// Serving a fallback (or partial) database over damaged data would
    /// silently drop acknowledged writes, so opening refuses instead.
    Unrecoverable,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::Data(m) => write!(f, "{m}"),
            WalError::Injected(p) => write!(f, "injected fault at {p}"),
            WalError::Poisoned => write!(f, "wal poisoned by a torn append; reopen the store"),
            WalError::Unrecoverable => write!(
                f,
                "no checkpoint in the data directory validates; refusing to serve a \
                 partial or fallback database over damaged data"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result alias for durability operations.
pub type WalResult<T> = Result<T, WalError>;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven — no external dependency.

fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Record envelopes.

/// Wrap a payload in the on-disk envelope: `u32` LE length, `u32` LE
/// CRC-32 of the payload, payload bytes.
fn envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENVELOPE + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One step of scanning a buffer of envelope records.
enum Scan<'a> {
    /// A complete, checksum-valid record; `next` is the offset after it.
    Ok { payload: &'a [u8], next: usize },
    /// The buffer ends exactly at a record boundary.
    End,
    /// The bytes from the current offset on are torn or corrupt (short
    /// header, short payload, length over the cap, checksum mismatch).
    Torn,
}

/// Scan one envelope record at `at`.
fn scan_record(buf: &[u8], at: usize) -> Scan<'_> {
    if at == buf.len() {
        return Scan::End;
    }
    if buf.len() - at < ENVELOPE {
        return Scan::Torn;
    }
    let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap());
    let crc = u32::from_le_bytes(buf[at + 4..at + 8].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Scan::Torn;
    }
    let start = at + ENVELOPE;
    let end = match start.checked_add(len as usize) {
        Some(end) if end <= buf.len() => end,
        _ => return Scan::Torn,
    };
    let payload = &buf[start..end];
    if crc32(payload) != crc {
        return Scan::Torn;
    }
    Scan::Ok { payload, next: end }
}

// ---------------------------------------------------------------------------
// WAL record payloads.

/// A logical WAL record. Encoded with the workspace codec; the only kind
/// today is the server's row append.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Append `rows` to `table` (the already-validated form of the server's
    /// `Insert` request).
    Insert {
        /// Target table.
        table: String,
        /// Rows appended, each matching the table's arity.
        rows: Vec<Tuple>,
    },
}

impl WalRecord {
    /// Encode to the codec byte form (tag, then fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::Insert { table, rows } => {
                codec::put_u8(&mut out, 0);
                codec::put_str(&mut out, table);
                codec::put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    codec::put_tuple(&mut out, row);
                }
            }
        }
        out
    }

    /// Decode a payload produced by [`WalRecord::encode`].
    pub fn decode(payload: &[u8]) -> codec::CodecResult<WalRecord> {
        let mut r = Reader::new(payload);
        let record = match r.u8()? {
            0 => {
                let table = r.str()?;
                let n = r.len()?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(codec::get_tuple(&mut r)?);
                }
                WalRecord::Insert { table, rows }
            }
            other => return Err(codec::CodecError(format!("unknown wal record tag {other}"))),
        };
        r.finish()?;
        Ok(record)
    }

    /// Apply this record to a database (the replay half of recovery).
    fn apply(&self, db: &mut Database) -> crate::Result<()> {
        match self {
            WalRecord::Insert { table, rows } => {
                let rel = db.relation_mut(table)?;
                for row in rows {
                    rel.insert_values(row.values().to_vec())?;
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint encoding.

/// Encode the full database: magic, version, schema epoch, then every
/// table's definition (name, schema, primary key) and instance.
fn encode_database(db: &Database) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u32(&mut out, CHECKPOINT_MAGIC);
    codec::put_u8(&mut out, CHECKPOINT_VERSION);
    codec::put_u64(&mut out, db.schema_epoch());
    let defs: Vec<&TableDef> = db.table_defs().collect();
    codec::put_u32(&mut out, defs.len() as u32);
    for def in defs {
        codec::put_str(&mut out, &def.name);
        codec::put_schema(&mut out, &def.schema);
        codec::put_u32(&mut out, def.primary_key.len() as u32);
        for col in &def.primary_key {
            codec::put_str(&mut out, col);
        }
        let rel = db.relation(&def.name).expect("definition implies instance");
        codec::put_relation(&mut out, rel);
    }
    out
}

/// Decode a checkpoint payload back into a database (epoch included).
fn decode_database(payload: &[u8]) -> codec::CodecResult<Database> {
    let mut r = Reader::new(payload);
    if r.u32()? != CHECKPOINT_MAGIC {
        return Err(codec::CodecError("bad checkpoint magic".into()));
    }
    let version = r.u8()?;
    if version != CHECKPOINT_VERSION {
        return Err(codec::CodecError(format!("unknown checkpoint version {version}")));
    }
    let epoch = r.u64()?;
    let tables = r.len()?;
    let mut db = Database::new();
    for _ in 0..tables {
        let name = r.str()?;
        let schema = codec::get_schema(&mut r)?;
        let keys = r.len()?;
        let mut primary_key = Vec::with_capacity(keys);
        for _ in 0..keys {
            primary_key.push(r.str()?);
        }
        let rel = codec::get_relation(&mut r)?;
        let def = TableDef { name, schema: schema.shared(), primary_key };
        db.install_table(def, rel);
    }
    r.finish()?;
    db.set_schema_epoch(epoch);
    Ok(db)
}

// ---------------------------------------------------------------------------
// File naming.

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:016x}"))
}

fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:016x}"))
}

/// Parse `<prefix>-<seq:016x>` file names back to sequence numbers.
fn parse_seq(name: &str, prefix: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_prefix('-')?;
    u64::from_str_radix(rest, 16).ok()
}

/// Best-effort directory fsync so renames and creations are themselves
/// durable (a no-op error on filesystems that refuse to sync directories).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

// ---------------------------------------------------------------------------
// Recovery.

/// The outcome of [`recover`].
pub struct Recovery {
    /// The recovered database: newest valid checkpoint + replayed WAL.
    pub db: Database,
    /// Sequence of the checkpoint recovery started from.
    pub seq: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Valid byte length of the WAL (the torn tail beyond it, if any, has
    /// been truncated away on disk).
    pub wal_len: u64,
    /// Whether a torn/corrupt tail was found and truncated.
    pub truncated: bool,
}

/// Recover the newest consistent database state from `dir`, truncating any
/// torn WAL tail in place. Returns `Ok(None)` when the directory holds no
/// checksum-valid checkpoint (fresh directory, or every checkpoint file is
/// damaged). Never panics on corrupt input: damaged checkpoints fall back
/// to older ones, damaged WAL suffixes are dropped.
pub fn recover(dir: &Path) -> WalResult<Option<Recovery>> {
    let reg = registry();
    let mut checkpoints: Vec<u64> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_seq(name, "checkpoint") {
                checkpoints.push(seq);
            }
        }
    }
    checkpoints.sort_unstable();

    // Newest valid checkpoint wins; a damaged one (torn tmp never renamed
    // cannot occur, but bit rot can) falls back to its predecessor.
    let mut base: Option<(u64, Database)> = None;
    for &seq in checkpoints.iter().rev() {
        let bytes = fs::read(checkpoint_path(dir, seq))?;
        if let Scan::Ok { payload, next } = scan_record(&bytes, 0) {
            if next == bytes.len() {
                if let Ok(db) = decode_database(payload) {
                    base = Some((seq, db));
                    break;
                }
            }
        }
    }
    let Some((seq, mut db)) = base else {
        return Ok(None);
    };

    // Replay the checkpoint's WAL, stopping (and truncating) at the first
    // torn or undecodable record — everything beyond it was never
    // acknowledged.
    let path = wal_path(dir, seq);
    let (mut replayed, mut wal_len, mut truncated) = (0u64, 0u64, false);
    if path.exists() {
        let bytes = fs::read(&path)?;
        let mut at = 0usize;
        loop {
            match scan_record(&bytes, at) {
                Scan::Ok { payload, next } => match WalRecord::decode(payload) {
                    Ok(record) if record.apply(&mut db).is_ok() => {
                        replayed += 1;
                        at = next;
                    }
                    _ => {
                        truncated = true;
                        break;
                    }
                },
                Scan::End => break,
                Scan::Torn => {
                    truncated = true;
                    break;
                }
            }
        }
        wal_len = at as u64;
        if truncated {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(wal_len)?;
            file.sync_data()?;
            reg.counter(names::WAL_TORN_TAILS).incr();
        }
    }

    reg.counter(names::WAL_RECOVERIES).incr();
    reg.counter(names::WAL_RECOVERED_RECORDS).add(replayed);
    Ok(Some(Recovery { db, seq, replayed, wal_len, truncated }))
}

// ---------------------------------------------------------------------------
// Replication positions and chunks.

/// A position in the durable log: the checkpoint generation (`seq`) plus a
/// byte offset into that generation's WAL file. Offsets always land on
/// record boundaries, so positions order totally within a generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReplPosition {
    /// Checkpoint generation the offset refers to.
    pub seq: u64,
    /// Byte offset of durable, checksum-valid records within `wal-<seq>`.
    pub offset: u64,
}

impl std::fmt::Display for ReplPosition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:x}:{}", self.seq, self.offset)
    }
}

/// Outcome of [`DurableStore::read_chunk`].
#[derive(Debug)]
pub enum WalChunk {
    /// Whole-record-aligned envelope bytes starting at the requested offset.
    Records(Vec<u8>),
    /// The requested position is the current durable position; nothing new.
    UpToDate,
    /// The requested generation is no longer the live one (the log was
    /// folded into a newer checkpoint); consult
    /// [`DurableStore::last_rotation`] or re-bootstrap from a checkpoint.
    Rotated,
}

// ---------------------------------------------------------------------------
// The live WAL handle.

struct Wal {
    file: File,
    /// Bytes of durable, checksum-valid records (the append offset).
    len: u64,
    /// A torn append happened; no further writes until reopen.
    poisoned: bool,
}

impl Wal {
    fn open(path: &Path, valid_len: u64) -> WalResult<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .append(false)
            .write(true)
            .read(true)
            .open(path)?;
        // Recovery already truncated torn tails, but be defensive: never
        // append after bytes we have not validated.
        file.set_len(valid_len)?;
        file.seek(SeekFrom::Start(valid_len))?;
        Ok(Wal { file, len: valid_len, poisoned: false })
    }

    /// Append one payload and make it durable. On any failure the log is
    /// restored to its previous length when possible; a torn write that
    /// cannot be cleaned (modeling a crash) poisons the handle.
    fn append(&mut self, payload: &[u8]) -> WalResult<()> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let reg = registry();
        let record = envelope(payload);

        match apply_delay(failpoints().check(FP_APPEND)) {
            FailAction::Off => {}
            FailAction::Error => return Err(WalError::Injected(FP_APPEND)),
            FailAction::Torn(keep) => {
                // A crash mid-write: part of the record reaches the file and
                // nothing can clean it up. The handle is dead; recovery must
                // truncate this tail.
                let keep = keep.min(record.len());
                let _ = self.file.write_all(&record[..keep]);
                let _ = self.file.sync_data();
                self.poisoned = true;
                return Err(WalError::Injected(FP_APPEND));
            }
            FailAction::SlowMs(_) => unreachable!("apply_delay resolves slow actions"),
        }

        if let Err(e) = self.file.write_all(&record) {
            self.rewind();
            return Err(WalError::Io(e));
        }

        let fsync_ok = match apply_delay(failpoints().check(FP_FSYNC)) {
            FailAction::Off => self.file.sync_data().map_err(WalError::Io),
            _ => Err(WalError::Injected(FP_FSYNC)),
        };
        if let Err(e) = fsync_ok {
            // The record reached the OS but was never durable: take it back
            // out so an unacknowledged write can never resurface.
            self.rewind();
            return Err(e);
        }

        self.len += record.len() as u64;
        reg.counter(names::WAL_APPENDS).incr();
        reg.counter(names::WAL_APPEND_BYTES).add(record.len() as u64);
        reg.counter(names::WAL_FSYNCS).incr();
        Ok(())
    }

    /// Append pre-enveloped record bytes (already checksummed by the node
    /// that produced them) and fsync — the replication ingest path. No
    /// failpoints here: replica-side faults are injected one level up
    /// (`repl.apply`), so arming the primary's WAL failpoints in a test
    /// never cross-fires into an in-process replica.
    fn append_enveloped(&mut self, bytes: &[u8]) -> WalResult<()> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        if let Err(e) = self.file.write_all(bytes) {
            self.rewind();
            return Err(WalError::Io(e));
        }
        if let Err(e) = self.file.sync_data() {
            self.rewind();
            return Err(WalError::Io(e));
        }
        self.len += bytes.len() as u64;
        let reg = registry();
        reg.counter(names::WAL_APPENDS).incr();
        reg.counter(names::WAL_APPEND_BYTES).add(bytes.len() as u64);
        reg.counter(names::WAL_FSYNCS).incr();
        Ok(())
    }

    /// Truncate back to the last durable record boundary after a failed
    /// append; if even that fails, poison the handle.
    fn rewind(&mut self) {
        let ok = self.file.set_len(self.len).is_ok()
            && self.file.seek(SeekFrom::Start(self.len)).is_ok();
        if !ok {
            self.poisoned = true;
        }
    }
}

// ---------------------------------------------------------------------------
// The durable store.

/// [`SnapshotStore`] plus durability: writes go through the WAL (fsync'd
/// before acknowledgement), checkpoints bound replay time, and
/// [`DurableStore::open`] recovers the pre-crash state from disk.
///
/// Readers are untouched: they pin snapshots from
/// [`DurableStore::snapshots`] exactly as before, wait-free with respect to
/// writers — durability adds cost to the write path only.
pub struct DurableStore {
    dir: PathBuf,
    store: Arc<SnapshotStore>,
    inner: Mutex<Inner>,
    checkpoint_every: u64,
    /// Checkpoints installed over the wire ([`DurableStore::install_checkpoint`]),
    /// i.e. replica bootstraps — exposed so tests can assert a graceful
    /// primary restart did not force a re-bootstrap.
    installed: AtomicU64,
}

struct Inner {
    wal: Wal,
    seq: u64,
    since_checkpoint: u64,
    /// The most recent fold, as (final position of the retired generation,
    /// new generation): a replication sender whose peer sits exactly at the
    /// retired position can hand it a cheap `rotate` instead of a full
    /// checkpoint re-bootstrap.
    last_rotation: Option<(ReplPosition, u64)>,
}

impl DurableStore {
    /// Open (or create) a durable store in `dir`. When the directory holds
    /// a valid checkpoint the on-disk state wins and `fallback` is ignored;
    /// a fresh (or unrecoverable) directory starts from `fallback`, which
    /// is checkpointed immediately so the no-valid-checkpoint window closes
    /// before any write is accepted. `checkpoint_every` is the number of
    /// WAL records after which the store folds the log into a fresh
    /// checkpoint (0 = never, for tests).
    pub fn open(dir: &Path, fallback: Database, checkpoint_every: u64) -> WalResult<DurableStore> {
        fs::create_dir_all(dir)?;
        // Sweep stale temp files from checkpoints interrupted mid-write.
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_str().is_some_and(|n| n.ends_with(".tmp")) {
                let _ = fs::remove_file(entry.path());
            }
        }

        let (db, seq, replayed, wal_len) = match recover(dir)? {
            Some(r) => (r.db, r.seq, r.replayed, r.wal_len),
            None => {
                // Distinguish a fresh directory from one whose checkpoints
                // are all damaged: quietly serving `fallback` over a damaged
                // directory would drop acknowledged writes.
                if has_checkpoint_files(dir)? {
                    return Err(WalError::Unrecoverable);
                }
                (fallback, 0, 0, 0)
            }
        };

        let checkpoint = checkpoint_path(dir, seq);
        if !checkpoint.exists() {
            write_checkpoint(dir, seq, &db)?;
        }
        let wal = Wal::open(&wal_path(dir, seq), wal_len)?;
        Ok(DurableStore {
            dir: dir.to_path_buf(),
            store: Arc::new(SnapshotStore::new(db)),
            inner: Mutex::new(Inner { wal, seq, since_checkpoint: replayed, last_rotation: None }),
            checkpoint_every,
            installed: AtomicU64::new(0),
        })
    }

    /// Re-run recovery on this handle in place: reload the newest valid
    /// checkpoint + WAL suffix from disk, publish the recovered state, and
    /// replace the (possibly poisoned) WAL handle with a clean one. This is
    /// the online healing path after a torn append — everything `recover`
    /// guarantees across a process restart, without the restart. Acked
    /// writes were fsync'd before their ack, so they all survive; the torn
    /// tail (never acked) is truncated away.
    pub fn reopen(&self) -> WalResult<()> {
        let mut inner = self.inner.lock().expect("durable store poisoned");
        let Some(recovery) = recover(&self.dir)? else {
            // `open` seeded a checkpoint before accepting any write, so an
            // empty recovery here means the directory is damaged, not fresh.
            return Err(WalError::Unrecoverable);
        };
        let Recovery { db, seq, replayed, wal_len, .. } = recovery;
        let wal = Wal::open(&wal_path(&self.dir, seq), wal_len)?;
        self.store.update(|cur| {
            // Epochs only ever move forward, even if the recovered image
            // (acked writes only) matches what was already published.
            let epoch = cur.schema_epoch().max(db.schema_epoch());
            *cur = db;
            cur.set_schema_epoch(epoch);
        });
        inner.wal = wal;
        inner.seq = seq;
        inner.since_checkpoint = replayed;
        inner.last_rotation = None;
        Ok(())
    }

    /// The snapshot store readers pin from (and the server executes over).
    pub fn snapshots(&self) -> &Arc<SnapshotStore> {
        &self.store
    }

    /// The directory holding the checkpoint and WAL files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably append `rows` to `table` and publish the new snapshot.
    /// Returns the schema epoch after the write. The sequence is strict:
    /// validate (a bad row never reaches the log), WAL append + fsync (the
    /// write is now crash-proof), publish, acknowledge — so a returned
    /// `Ok` epoch *is* the durability guarantee.
    pub fn insert(&self, table: &str, rows: &[Tuple]) -> WalResult<u64> {
        let timer = Timer::start();
        let mut inner = self.inner.lock().expect("durable store poisoned");

        // Validate against the current snapshot; writers are serialized by
        // the lock above, so nothing can invalidate this between the check
        // and the publish below.
        let snapshot = self.store.pin();
        let mut scratch =
            snapshot.relation(table).map_err(|e| WalError::Data(e.to_string()))?.clone();
        for row in rows {
            scratch
                .insert_values(row.values().to_vec())
                .map_err(|e| WalError::Data(e.to_string()))?;
        }

        let record = WalRecord::Insert { table: table.to_string(), rows: rows.to_vec() };
        inner.wal.append(&record.encode())?;

        let epoch = self.store.update(|db| {
            *db.relation_mut(table).expect("validated above") = scratch;
            db.schema_epoch()
        });

        inner.since_checkpoint += 1;
        if self.checkpoint_every > 0 && inner.since_checkpoint >= self.checkpoint_every {
            // Checkpoint failure is not a write failure: the record above is
            // durable in the current WAL either way; the fold just retries
            // after the next write.
            let _ = self.fold_into_checkpoint(&mut inner);
        }
        registry().histogram(names::WAL_APPEND_NS).record(timer.elapsed_ns());
        Ok(epoch)
    }

    /// Force a checkpoint now (folds the WAL into a fresh full snapshot).
    pub fn checkpoint(&self) -> WalResult<()> {
        let mut inner = self.inner.lock().expect("durable store poisoned");
        self.fold_into_checkpoint(&mut inner)
    }

    /// Current WAL length in bytes (diagnostics and tests).
    pub fn wal_len(&self) -> u64 {
        self.inner.lock().expect("durable store poisoned").wal.len
    }

    /// The current durable position: generation + byte offset of every
    /// checksum-valid, fsync'd record. Everything at or before this position
    /// is exactly the set of acknowledged writes.
    pub fn position(&self) -> ReplPosition {
        let inner = self.inner.lock().expect("durable store poisoned");
        ReplPosition { seq: inner.seq, offset: inner.wal.len }
    }

    /// How many checkpoints this store installed over the wire
    /// ([`DurableStore::install_checkpoint`]) — replica bootstraps.
    pub fn checkpoints_installed(&self) -> u64 {
        self.installed.load(Ordering::Relaxed)
    }

    /// The most recent WAL fold, as (final position of the retired
    /// generation, new generation). A reader that was exactly at the retired
    /// position can continue via [`DurableStore::rotate_to`] on its own
    /// copy; any other stale position needs a checkpoint re-bootstrap.
    pub fn last_rotation(&self) -> Option<(ReplPosition, u64)> {
        self.inner.lock().expect("durable store poisoned").last_rotation
    }

    /// Read a record-aligned chunk of durable WAL bytes at `from`, capped
    /// near `max_bytes` (always at least one whole record). Returns
    /// [`WalChunk::UpToDate`] at the durable position and
    /// [`WalChunk::Rotated`] when `from` names a retired generation.
    pub fn read_chunk(&self, from: ReplPosition, max_bytes: usize) -> WalResult<WalChunk> {
        let inner = self.inner.lock().expect("durable store poisoned");
        if from.seq != inner.seq {
            return Ok(WalChunk::Rotated);
        }
        let len = inner.wal.len;
        if from.offset > len {
            return Err(WalError::Data(format!(
                "read at {from} is beyond the durable length {len}"
            )));
        }
        if from.offset == len {
            return Ok(WalChunk::UpToDate);
        }
        // The lock keeps rotation from deleting the file under us; reads go
        // through a private handle so the append cursor is untouched.
        let mut file = File::open(wal_path(&self.dir, inner.seq))?;
        file.seek(SeekFrom::Start(from.offset))?;
        let mut buf = vec![0u8; (len - from.offset) as usize];
        file.read_exact(&mut buf)?;
        let mut end = 0usize;
        loop {
            match scan_record(&buf, end) {
                Scan::Ok { next, .. } if end == 0 || next <= max_bytes => end = next,
                _ => break,
            }
        }
        if end == 0 {
            // Everything below `len` was validated before fsync; torn bytes
            // here mean the file changed underneath us (external damage).
            return Err(WalError::Data(format!("torn record inside the durable prefix at {from}")));
        }
        buf.truncate(end);
        Ok(WalChunk::Records(buf))
    }

    /// The current checkpoint generation's file bytes (enveloped, exactly as
    /// on disk) for bootstrapping a replica.
    pub fn checkpoint_data(&self) -> WalResult<(u64, Vec<u8>)> {
        let inner = self.inner.lock().expect("durable store poisoned");
        let bytes = fs::read(checkpoint_path(&self.dir, inner.seq))?;
        Ok((inner.seq, bytes))
    }

    /// Replica ingest: install a checkpoint received over the wire as
    /// generation `seq`, replacing all local state (disk and published
    /// snapshot). The bytes are validated (envelope checksum + full decode)
    /// before anything on disk or in memory changes.
    pub fn install_checkpoint(&self, seq: u64, bytes: &[u8]) -> WalResult<()> {
        let payload = match scan_record(bytes, 0) {
            Scan::Ok { payload, next } if next == bytes.len() => payload,
            _ => return Err(WalError::Data("received checkpoint fails its checksum".into())),
        };
        let db = decode_database(payload)
            .map_err(|e| WalError::Data(format!("received checkpoint does not decode: {}", e.0)))?;

        let mut inner = self.inner.lock().expect("durable store poisoned");
        let tmp = self.dir.join(format!("checkpoint-{seq:016x}.tmp"));
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_data()?;
        drop(file);
        fs::rename(&tmp, checkpoint_path(&self.dir, seq))?;
        let wal = Wal::open(&wal_path(&self.dir, seq), 0)?;
        sync_dir(&self.dir);
        // The new generation is durable; retire every other one.
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let Some(name) = entry.file_name().to_str().map(str::to_string) else { continue };
            let gen = parse_seq(&name, "checkpoint").or_else(|| parse_seq(&name, "wal"));
            if gen.is_some_and(|g| g != seq) {
                let _ = fs::remove_file(entry.path());
            }
        }
        self.store.update(|cur| {
            let epoch = cur.schema_epoch().max(db.schema_epoch());
            *cur = db;
            cur.set_schema_epoch(epoch);
        });
        inner.wal = wal;
        inner.seq = seq;
        inner.since_checkpoint = 0;
        inner.last_rotation = None;
        self.installed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Replica ingest: append a chunk of already-enveloped records (as
    /// produced by [`DurableStore::read_chunk`] on the primary) that extends
    /// the local log at exactly (`seq`, `offset`), fsync it, and publish the
    /// applied state as a new snapshot. All records are CRC-checked and
    /// decoded, and the whole batch is applied to a private copy, before any
    /// disk write — a bad chunk changes nothing. Returns the new durable
    /// position.
    pub fn apply_records(&self, seq: u64, offset: u64, bytes: &[u8]) -> WalResult<ReplPosition> {
        let mut inner = self.inner.lock().expect("durable store poisoned");
        if seq != inner.seq || offset != inner.wal.len {
            return Err(WalError::Data(format!(
                "segment at {} does not extend the local log at {}",
                ReplPosition { seq, offset },
                ReplPosition { seq: inner.seq, offset: inner.wal.len },
            )));
        }
        let mut records = Vec::new();
        let mut at = 0usize;
        loop {
            match scan_record(bytes, at) {
                Scan::Ok { payload, next } => {
                    records.push(WalRecord::decode(payload).map_err(|e| WalError::Data(e.0))?);
                    at = next;
                }
                Scan::End => break,
                Scan::Torn => {
                    return Err(WalError::Data("torn record inside a replicated segment".into()))
                }
            }
        }
        let mut next_db = (*self.store.pin().database()).clone();
        for record in &records {
            record.apply(&mut next_db).map_err(|e| WalError::Data(e.to_string()))?;
        }
        inner.wal.append_enveloped(bytes)?;
        self.store.update(|db| *db = next_db);
        inner.since_checkpoint += records.len() as u64;
        Ok(ReplPosition { seq, offset: inner.wal.len })
    }

    /// Replica ingest: the primary folded its WAL into generation
    /// `new_seq`. Having applied the retired generation in full, fold the
    /// local snapshot into the same generation (writing our own checkpoint —
    /// byte equality of checkpoints is not required, state equality is).
    pub fn rotate_to(&self, new_seq: u64) -> WalResult<()> {
        let mut inner = self.inner.lock().expect("durable store poisoned");
        if new_seq <= inner.seq {
            return Err(WalError::Data(format!(
                "rotate to generation {new_seq:x} does not advance past {:x}",
                inner.seq
            )));
        }
        self.fold_to(&mut inner, new_seq)
    }

    fn fold_into_checkpoint(&self, inner: &mut Inner) -> WalResult<()> {
        let next = inner.seq + 1;
        self.fold_to(inner, next)
    }

    fn fold_to(&self, inner: &mut Inner, next: u64) -> WalResult<()> {
        let snapshot = self.store.pin();
        write_checkpoint(&self.dir, next, &snapshot)?;
        // The new checkpoint is durable; start its (empty) WAL and only then
        // retire the previous generation.
        let wal = Wal::open(&wal_path(&self.dir, next), 0)?;
        sync_dir(&self.dir);
        let _ = fs::remove_file(checkpoint_path(&self.dir, inner.seq));
        let _ = fs::remove_file(wal_path(&self.dir, inner.seq));
        inner.last_rotation = Some((ReplPosition { seq: inner.seq, offset: inner.wal.len }, next));
        inner.wal = wal;
        inner.seq = next;
        inner.since_checkpoint = 0;
        Ok(())
    }
}

/// Whether `dir` contains any `checkpoint-*` file (used to tell a fresh
/// directory apart from a damaged one when recovery comes back empty).
fn has_checkpoint_files(dir: &Path) -> WalResult<bool> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_str().is_some_and(|n| parse_seq(n, "checkpoint").is_some()) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Write `db` as `checkpoint-<seq>`: envelope to a temp file, fsync,
/// atomic rename, directory fsync. A crash at any offset leaves either the
/// previous state (temp never renamed) or the complete new checkpoint.
fn write_checkpoint(dir: &Path, seq: u64, db: &Database) -> WalResult<()> {
    let payload = encode_database(db);
    let record = envelope(&payload);
    let tmp = dir.join(format!("checkpoint-{seq:016x}.tmp"));

    let mut file = File::create(&tmp)?;
    match apply_delay(failpoints().check(FP_CHECKPOINT)) {
        FailAction::Off => file.write_all(&record)?,
        FailAction::Torn(keep) => {
            // Crash mid-checkpoint: a torn temp file that never gets
            // renamed. Recovery ignores it entirely.
            let keep = keep.min(record.len());
            let _ = file.write_all(&record[..keep]);
            let _ = file.sync_data();
            return Err(WalError::Injected(FP_CHECKPOINT));
        }
        FailAction::Error => return Err(WalError::Injected(FP_CHECKPOINT)),
        FailAction::SlowMs(_) => unreachable!("apply_delay resolves slow actions"),
    }
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp, checkpoint_path(dir, seq))?;
    sync_dir(dir);
    let reg = registry();
    reg.counter(names::WAL_CHECKPOINTS).incr();
    reg.counter(names::WAL_FSYNCS).add(2);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::rel;
    use crate::value::Value;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static UNIQ: AtomicU64 = AtomicU64::new(0);
        let n = UNIQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("certus-wal-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed_db() -> Database {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a", "b"], vec![vec![Value::Int(1), Value::str("x")]]));
        db
    }

    fn row(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::str("w")])
    }

    fn rows_of(db: &Database) -> usize {
        db.relation("r").unwrap().len()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn acked_writes_survive_reopen() {
        let dir = temp_dir("reopen");
        {
            let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
            for i in 0..5 {
                store.insert("r", &[row(i)]).unwrap();
            }
            assert_eq!(rows_of(&store.snapshots().pin()), 6);
            // Dropped without checkpointing: reopen replays the WAL.
        }
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        let snap = store.snapshots().pin();
        assert_eq!(rows_of(&snap), 6, "all five acked inserts recovered");
        assert!(snap.epoch() > 0, "recovered epoch never rewinds to zero");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_fold_the_wal_and_retire_old_generations() {
        let dir = temp_dir("ckpt");
        let store = DurableStore::open(&dir, seed_db(), 2).unwrap();
        for i in 0..5 {
            store.insert("r", &[row(i)]).unwrap();
        }
        // Two checkpoints happened (after records 2 and 4); only the newest
        // generation's files remain, and the live WAL holds one record.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2, "one checkpoint + one wal, got {names:?}");
        drop(store);
        let store = DurableStore::open(&dir, Database::new(), 2).unwrap();
        assert_eq!(rows_of(&store.snapshots().pin()), 6);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejected_writes_leave_log_and_state_untouched() {
        let dir = temp_dir("reject");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        let before = store.wal_len();
        // Wrong arity: validation fails before the WAL sees anything.
        let err = store.insert("r", &[Tuple::new(vec![Value::Int(1)])]);
        assert!(matches!(err, Err(WalError::Data(_))));
        let err = store.insert("missing", &[row(1)]);
        assert!(matches!(err, Err(WalError::Data(_))));
        assert_eq!(store.wal_len(), before);
        assert_eq!(rows_of(&store.snapshots().pin()), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_is_unacked_and_never_resurfaces() {
        let dir = temp_dir("torn");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        store.insert("r", &[row(1)]).unwrap();
        // The next append tears after 5 bytes — a crash mid-write.
        failpoints().arm(FP_APPEND, FailAction::Torn(5), 0, 1);
        let err = store.insert("r", &[row(2)]);
        failpoints().disarm(FP_APPEND);
        assert!(matches!(err, Err(WalError::Injected(_))));
        // The handle is poisoned: further writes refuse instead of stacking
        // records after a torn tail.
        assert!(matches!(store.insert("r", &[row(3)]), Err(WalError::Poisoned)));
        drop(store);
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        let snap = store.snapshots().pin();
        assert_eq!(rows_of(&snap), 2, "acked write present, torn write gone");
        // And the store keeps working after recovery truncated the tail.
        store.insert("r", &[row(4)]).unwrap();
        drop(store);
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        assert_eq!(rows_of(&store.snapshots().pin()), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_fsync_rolls_the_record_back() {
        let dir = temp_dir("fsync");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        failpoints().arm(FP_FSYNC, FailAction::Error, 0, 1);
        let err = store.insert("r", &[row(1)]);
        failpoints().disarm(FP_FSYNC);
        assert!(matches!(err, Err(WalError::Injected(_))));
        // The un-fsync'd record was rolled back: the log is clean and the
        // store accepts the retry.
        store.insert("r", &[row(1)]).unwrap();
        drop(store);
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        assert_eq!(rows_of(&store.snapshots().pin()), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crashed_checkpoint_keeps_the_previous_generation() {
        let dir = temp_dir("ckpt-crash");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        for i in 0..3 {
            store.insert("r", &[row(i)]).unwrap();
        }
        failpoints().arm(FP_CHECKPOINT, FailAction::Torn(10), 0, 1);
        let err = store.checkpoint();
        failpoints().disarm(FP_CHECKPOINT);
        assert!(matches!(err, Err(WalError::Injected(_))));
        // Writes continue against the old generation…
        store.insert("r", &[row(9)]).unwrap();
        drop(store);
        // …and recovery sees checkpoint-0 + the full WAL (the torn temp
        // file is swept and ignored).
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        assert_eq!(rows_of(&store.snapshots().pin()), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The satellite fuzz: recovery over every truncation offset and every
    /// flipped byte of a real checkpoint + WAL directory must never panic,
    /// never lose an earlier record to a later corruption, and never
    /// resurrect bytes beyond the damage.
    #[test]
    fn recovery_survives_every_truncation_and_bit_flip() {
        let dir = temp_dir("fuzz-src");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        for i in 0..4 {
            store.insert("r", &[row(i)]).unwrap();
        }
        drop(store);
        let wal_file = wal_path(&dir, 0);
        let ckpt_file = checkpoint_path(&dir, 0);
        let wal_bytes = fs::read(&wal_file).unwrap();
        let ckpt_bytes = fs::read(&ckpt_file).unwrap();

        // Record boundaries, for asserting prefix semantics.
        let mut boundaries = vec![0usize];
        let mut at = 0usize;
        while let Scan::Ok { next, .. } = scan_record(&wal_bytes, at) {
            boundaries.push(next);
            at = next;
        }
        assert_eq!(boundaries.len(), 5, "four records + origin");

        let scratch = temp_dir("fuzz-run");
        fs::create_dir_all(&scratch).unwrap();
        let run = |wal: &[u8], ckpt: &[u8]| -> Option<usize> {
            fs::write(checkpoint_path(&scratch, 0), ckpt).unwrap();
            fs::write(wal_path(&scratch, 0), wal).unwrap();
            let recovered = recover(&scratch).unwrap();
            recovered.map(|r| rows_of(&r.db))
        };

        // Every truncation of the WAL recovers the longest whole-record
        // prefix — never an error, never a panic, never a partial record.
        for cut in 0..=wal_bytes.len() {
            let rows = run(&wal_bytes[..cut], &ckpt_bytes).expect("checkpoint is intact");
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(rows, 1 + whole, "truncation at {cut}");
        }

        // Every single-byte corruption of the WAL yields a prefix of the
        // records before the damaged one (CRC catches the flip).
        for i in 0..wal_bytes.len() {
            let mut bad = wal_bytes.clone();
            bad[i] ^= 0xFF;
            let rows = run(&bad, &ckpt_bytes).expect("checkpoint is intact");
            let damaged_record = boundaries.iter().filter(|&&b| b <= i).count() - 1;
            assert!(
                rows <= 1 + damaged_record,
                "flip at {i}: {rows} rows resurrected past record {damaged_record}"
            );
        }

        // Every single-byte corruption of the only checkpoint makes
        // recovery refuse (None) — cleanly, without panicking.
        for i in 0..ckpt_bytes.len() {
            let mut bad = ckpt_bytes.clone();
            bad[i] ^= 0xFF;
            assert!(run(&wal_bytes, &bad).is_none(), "corrupt checkpoint at byte {i}");
        }

        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&scratch).unwrap();
    }

    #[test]
    fn damaged_newest_checkpoint_falls_back_to_its_predecessor() {
        let dir = temp_dir("fallback");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        store.insert("r", &[row(1)]).unwrap();
        drop(store);
        // Forge a newer, corrupt checkpoint next to the valid generation 0.
        fs::write(checkpoint_path(&dir, 1), b"garbage that is not a checkpoint").unwrap();
        let recovered = recover(&dir).unwrap().expect("falls back");
        assert_eq!(recovered.seq, 0);
        assert_eq!(rows_of(&recovered.db), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_chunk_streams_record_aligned_bytes() {
        let dir = temp_dir("chunk");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        for i in 0..4 {
            store.insert("r", &[row(i)]).unwrap();
        }
        let end = store.position();
        assert_eq!(end.seq, 0);
        assert!(matches!(store.read_chunk(end, 1 << 20).unwrap(), WalChunk::UpToDate));

        // A tiny cap still yields one whole record per read; chaining reads
        // walks the full log.
        let mut pos = ReplPosition { seq: 0, offset: 0 };
        let mut collected = Vec::new();
        let mut chunks = 0;
        while pos < end {
            match store.read_chunk(pos, 1).unwrap() {
                WalChunk::Records(bytes) => {
                    pos.offset += bytes.len() as u64;
                    collected.extend_from_slice(&bytes);
                    chunks += 1;
                }
                other => panic!("expected records, got {other:?}"),
            }
        }
        assert_eq!(chunks, 4, "cap of one byte forces one record per chunk");
        assert_eq!(collected, fs::read(wal_path(&dir, 0)).unwrap());

        // A generous cap returns everything at once.
        match store.read_chunk(ReplPosition { seq: 0, offset: 0 }, 1 << 20).unwrap() {
            WalChunk::Records(bytes) => assert_eq!(bytes.len() as u64, end.offset),
            other => panic!("expected records, got {other:?}"),
        }

        // Reading past the durable length is an error, not torn data.
        let beyond = ReplPosition { seq: 0, offset: end.offset + 8 };
        assert!(matches!(store.read_chunk(beyond, 1 << 20), Err(WalError::Data(_))));

        // After a fold the old generation reports Rotated and last_rotation
        // names the hand-off.
        store.checkpoint().unwrap();
        assert!(matches!(store.read_chunk(end, 1 << 20).unwrap(), WalChunk::Rotated));
        assert_eq!(store.last_rotation(), Some((end, 1)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replica_ingest_mirrors_the_primary() {
        let primary_dir = temp_dir("repl-primary");
        let replica_dir = temp_dir("repl-replica");
        let primary = DurableStore::open(&primary_dir, seed_db(), 0).unwrap();
        for i in 0..3 {
            primary.insert("r", &[row(i)]).unwrap();
        }

        // Bootstrap: ship the checkpoint, then the WAL suffix.
        let replica = DurableStore::open(&replica_dir, Database::new(), 0).unwrap();
        let (seq, ckpt) = primary.checkpoint_data().unwrap();
        replica.install_checkpoint(seq, &ckpt).unwrap();
        assert_eq!(replica.checkpoints_installed(), 1);
        let mut pos = replica.position();
        assert_eq!(pos, ReplPosition { seq: 0, offset: 0 });
        while let WalChunk::Records(bytes) = primary.read_chunk(pos, 1 << 20).unwrap() {
            pos = replica.apply_records(pos.seq, pos.offset, &bytes).unwrap();
        }
        assert_eq!(pos, primary.position());
        assert_eq!(rows_of(&replica.snapshots().pin()), 4);
        assert_eq!(replica.snapshots().pin().epoch(), primary.snapshots().pin().epoch());

        // A chunk that does not extend the local log is refused untouched.
        let chunk = match primary.read_chunk(ReplPosition { seq: 0, offset: 0 }, 1 << 20).unwrap() {
            WalChunk::Records(bytes) => bytes,
            other => panic!("expected records, got {other:?}"),
        };
        assert!(matches!(replica.apply_records(0, 0, &chunk), Err(WalError::Data(_))));
        // And a torn chunk is refused before any disk write.
        let before = replica.wal_len();
        assert!(matches!(
            replica.apply_records(pos.seq, pos.offset, &chunk[..chunk.len() - 3]),
            Err(WalError::Data(_))
        ));
        assert_eq!(replica.wal_len(), before);

        // Rotation: primary folds, replica follows with its own fold.
        primary.checkpoint().unwrap();
        let (at, new_seq) = primary.last_rotation().unwrap();
        assert_eq!(at, pos);
        replica.rotate_to(new_seq).unwrap();
        assert_eq!(replica.position(), primary.position());

        // Live traffic keeps flowing on the new generation.
        primary.insert("r", &[row(9)]).unwrap();
        let mut pos = replica.position();
        while let WalChunk::Records(bytes) = primary.read_chunk(pos, 1 << 20).unwrap() {
            pos = replica.apply_records(pos.seq, pos.offset, &bytes).unwrap();
        }
        assert_eq!(rows_of(&replica.snapshots().pin()), 5);

        // The replica state is durable in its own right.
        drop(replica);
        let back = DurableStore::open(&replica_dir, Database::new(), 0).unwrap();
        assert_eq!(rows_of(&back.snapshots().pin()), 5);
        fs::remove_dir_all(&primary_dir).unwrap();
        fs::remove_dir_all(&replica_dir).unwrap();
    }

    #[test]
    fn reopen_heals_a_poisoned_handle_without_losing_acked_writes() {
        let dir = temp_dir("heal");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        store.insert("r", &[row(1)]).unwrap();
        failpoints().arm(FP_APPEND, FailAction::Torn(5), 0, 1);
        assert!(store.insert("r", &[row(2)]).is_err());
        failpoints().disarm(FP_APPEND);
        assert!(matches!(store.insert("r", &[row(3)]), Err(WalError::Poisoned)));

        // Online healing: same handle, same snapshot store, no restart.
        let store_arc = Arc::clone(store.snapshots());
        let epoch_before = store_arc.pin().epoch();
        store.reopen().unwrap();
        assert_eq!(rows_of(&store_arc.pin()), 2, "acked write kept, torn write gone");
        assert!(store_arc.pin().epoch() >= epoch_before, "epoch never rewinds");
        store.insert("r", &[row(4)]).unwrap();
        drop(store);
        let store = DurableStore::open(&dir, Database::new(), 0).unwrap();
        assert_eq!(rows_of(&store.snapshots().pin()), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_damaged_directory_refuses_to_open_with_a_clean_error() {
        let dir = temp_dir("double-damage");
        let store = DurableStore::open(&dir, seed_db(), 0).unwrap();
        store.insert("r", &[row(1)]).unwrap();
        store.checkpoint().unwrap();
        // Forge a fallback generation, then damage both checkpoints.
        fs::write(checkpoint_path(&dir, 0), b"older generation, also damaged").unwrap();
        let newest = checkpoint_path(&dir, 1);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        drop(store);

        assert!(recover(&dir).unwrap().is_none(), "recovery reports no valid checkpoint");
        let err = DurableStore::open(&dir, seed_db(), 0);
        assert!(
            matches!(err, Err(WalError::Unrecoverable)),
            "open refuses rather than serving the fallback over damaged data"
        );
        // A genuinely fresh directory still starts from the fallback.
        let fresh = temp_dir("double-damage-fresh");
        assert!(DurableStore::open(&fresh, seed_db(), 0).is_ok());
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&fresh).unwrap();
    }

    #[test]
    fn wal_records_round_trip_and_reject_malformed() {
        let record = WalRecord::Insert { table: "r".into(), rows: vec![row(1), row(2)] };
        let bytes = record.encode();
        assert_eq!(WalRecord::decode(&bytes).unwrap(), record);
        for cut in 0..bytes.len() {
            assert!(WalRecord::decode(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(WalRecord::decode(&trailing).is_err());
        let mut bad_tag = bytes;
        bad_tag[0] = 9;
        assert!(WalRecord::decode(&bad_tag).is_err());
    }

    #[test]
    fn checkpoint_encoding_preserves_defs_and_epoch() {
        let mut db = Database::new();
        db.create_table(
            TableDef::new("keyed", crate::schema::Schema::of_names(&["k", "v"])).with_key(&["k"]),
        )
        .unwrap();
        db.relation_mut("keyed")
            .unwrap()
            .insert_values(vec![Value::Int(1), Value::str("a")])
            .unwrap();
        let payload = encode_database(&db);
        let back = decode_database(&payload).unwrap();
        assert_eq!(back.schema_epoch(), db.schema_epoch());
        assert_eq!(back.table_def("keyed").unwrap().primary_key, vec!["k"]);
        assert_eq!(back.relation("keyed").unwrap(), db.relation("keyed").unwrap());
    }
}
