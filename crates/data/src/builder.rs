//! Convenience constructors for relations and databases, used pervasively in
//! tests, examples and the paper's worked examples.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Build a relation from column names and rows of values. Columns are typed
/// `Any` and nullable; arity mismatches panic (this is a test helper).
pub fn rel(columns: &[&str], rows: Vec<Vec<Value>>) -> Relation {
    let schema = Schema::of_names(columns).shared();
    let mut out = Relation::empty(schema);
    for row in rows {
        out.insert(Tuple::new(row)).expect("row arity must match columns");
    }
    out
}

/// Build a single-column relation of integers.
pub fn int_rel(column: &str, values: &[i64]) -> Relation {
    rel(
        column.split(',').collect::<Vec<_>>().as_slice(),
        values.iter().map(|&v| vec![Value::Int(v)]).collect(),
    )
}

/// Shorthand for a row of values.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::value::Value::from($v)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_builder() {
        let r = rel(&["a", "b"], vec![vec![Value::Int(1), Value::str("x")]]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 1);
        assert_eq!(r.schema().names(), vec!["a", "b"]);
    }

    #[test]
    fn int_rel_builder() {
        let r = int_rel("a", &[1, 2, 3]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.arity(), 1);
    }

    #[test]
    fn row_macro() {
        let r: Vec<Value> = row![1i64, "x", true];
        assert_eq!(r, vec![Value::Int(1), Value::str("x"), Value::Bool(true)]);
    }

    #[test]
    #[should_panic]
    fn rel_builder_panics_on_bad_arity() {
        rel(&["a", "b"], vec![vec![Value::Int(1)]]);
    }
}
