//! The binary codec for data-layer types: values, schemas, tuples,
//! relations.
//!
//! This is the single encoding used everywhere bytes of data cross a
//! boundary — the server's wire protocol (`certus-server`'s `protocol`
//! module layers its request/response grammar and the algebra-expression
//! codecs on top of these functions) and the durable storage layer
//! ([`crate::wal`]), whose log records and checkpoints are these same bytes
//! wrapped in checksummed envelopes. Sharing one codec means a relation
//! inserted over TCP, logged to the WAL, and read back after a crash is
//! byte-identical at every hop.
//!
//! Conventions: integers are little-endian, floats travel as IEEE-754 bits,
//! strings as `u32` length + UTF-8 bytes, options as a presence byte,
//! collections as `u32` count + elements. Decoding is strict: unknown tags,
//! truncations, non-UTF-8 strings and hostile collection counts all fail
//! with [`CodecError`] instead of panicking or over-allocating.

use crate::null::NullId;
use crate::relation::Relation;
use crate::schema::{Attribute, Schema};
use crate::tuple::Tuple;
use crate::types::ValueType;
use crate::value::Value;
use std::sync::Arc;

/// A decoding failure: truncation, an unknown tag, bad UTF-8, a hostile
/// length. Carries a human-readable description of the violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Result alias for decoding operations.
pub type CodecResult<T> = Result<T, CodecError>;

fn bad(msg: impl Into<String>) -> CodecError {
    CodecError(msg.into())
}

// ---------------------------------------------------------------------------
// Primitive encoders.

/// Append one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i64`, little-endian.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i32`, little-endian.
pub fn put_i32(out: &mut Vec<u8>, v: i32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a string as `u32` byte length + UTF-8 bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Append a bool as one byte (0 or 1).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

/// Append an option as a presence byte followed by the value when present.
pub fn put_opt<T>(out: &mut Vec<u8>, v: Option<&T>, put: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        Some(v) => {
            out.push(1);
            put(out, v);
        }
        None => out.push(0),
    }
}

/// A cursor over an encoded payload with bounds-checked reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.at..end];
                self.at = end;
                Ok(s)
            }
            None => Err(bad(format!(
                "truncated payload: wanted {n} bytes at offset {} of {}",
                self.at,
                self.buf.len()
            ))),
        }
    }

    /// Read one byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i32`.
    pub fn i32(&mut self) -> CodecResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string is not UTF-8"))
    }

    /// Read a bool byte (anything other than 0/1 is malformed).
    pub fn bool(&mut self) -> CodecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(bad(format!("bad bool byte {other}"))),
        }
    }

    /// A collection length, sanity-capped by the bytes actually remaining
    /// (every element takes ≥ 1 byte) so hostile lengths cannot force huge
    /// allocations.
    #[allow(clippy::len_without_is_empty)] // reads a length prefix; not a container
    pub fn len(&mut self) -> CodecResult<usize> {
        let n = self.u32()? as usize;
        let left = self.buf.len() - self.at;
        if n > left {
            return Err(bad(format!("length {n} exceeds remaining {left} bytes")));
        }
        Ok(n)
    }

    /// Require the payload to be fully consumed (trailing bytes are
    /// malformed).
    pub fn finish(&self) -> CodecResult<()> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(bad(format!("{} trailing bytes", self.buf.len() - self.at)))
        }
    }
}

/// Read an option encoded by [`put_opt`].
pub fn get_opt<T>(
    r: &mut Reader<'_>,
    get: impl FnOnce(&mut Reader<'_>) -> CodecResult<T>,
) -> CodecResult<Option<T>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get(r)?)),
        other => Err(bad(format!("bad option byte {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Data-layer encoders.

/// Append a [`Value`]: `u8` tag (null 0, int 1, float 2, decimal 3, str 4,
/// bool 5, date 6), then the body.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null(NullId(id)) => {
            put_u8(out, 0);
            put_u64(out, *id);
        }
        Value::Int(i) => {
            put_u8(out, 1);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, 2);
            put_u64(out, f.to_bits());
        }
        Value::Decimal(d) => {
            put_u8(out, 3);
            put_i64(out, *d);
        }
        Value::Str(s) => {
            put_u8(out, 4);
            put_str(out, s);
        }
        Value::Bool(b) => {
            put_u8(out, 5);
            put_bool(out, *b);
        }
        Value::Date(d) => {
            put_u8(out, 6);
            put_i32(out, *d);
        }
    }
}

/// Read a [`Value`] encoded by [`put_value`].
pub fn get_value(r: &mut Reader<'_>) -> CodecResult<Value> {
    Ok(match r.u8()? {
        0 => Value::Null(NullId(r.u64()?)),
        1 => Value::Int(r.i64()?),
        2 => Value::Float(f64::from_bits(r.u64()?)),
        3 => Value::Decimal(r.i64()?),
        4 => Value::str(r.str()?),
        5 => Value::Bool(r.bool()?),
        6 => Value::Date(r.i32()?),
        other => return Err(bad(format!("unknown value tag {other}"))),
    })
}

/// Append a [`ValueType`] as one byte.
pub fn put_value_type(out: &mut Vec<u8>, ty: ValueType) {
    put_u8(
        out,
        match ty {
            ValueType::Int => 0,
            ValueType::Float => 1,
            ValueType::Decimal => 2,
            ValueType::Str => 3,
            ValueType::Bool => 4,
            ValueType::Date => 5,
            ValueType::Any => 6,
        },
    );
}

/// Read a [`ValueType`] encoded by [`put_value_type`].
pub fn get_value_type(r: &mut Reader<'_>) -> CodecResult<ValueType> {
    Ok(match r.u8()? {
        0 => ValueType::Int,
        1 => ValueType::Float,
        2 => ValueType::Decimal,
        3 => ValueType::Str,
        4 => ValueType::Bool,
        5 => ValueType::Date,
        6 => ValueType::Any,
        other => return Err(bad(format!("unknown value type {other}"))),
    })
}

/// Append a [`Schema`] as `u32` attribute count + (name, type, nullable)
/// triples.
pub fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.attrs().len() as u32);
    for a in schema.attrs() {
        put_str(out, &a.name);
        put_value_type(out, a.ty);
        put_bool(out, a.nullable);
    }
}

/// Read a [`Schema`] encoded by [`put_schema`].
pub fn get_schema(r: &mut Reader<'_>) -> CodecResult<Schema> {
    let n = r.len()?;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let ty = get_value_type(r)?;
        let nullable = r.bool()?;
        attrs.push(Attribute { name, ty, nullable });
    }
    Ok(Schema::new(attrs))
}

/// Append a [`Tuple`] as `u32` arity + values.
pub fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u32(out, t.values().len() as u32);
    for v in t.values() {
        put_value(out, v);
    }
}

/// Read a [`Tuple`] encoded by [`put_tuple`].
pub fn get_tuple(r: &mut Reader<'_>) -> CodecResult<Tuple> {
    let n = r.len()?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(get_value(r)?);
    }
    Ok(Tuple::new(values))
}

/// Append a [`Relation`] as its schema + `u32` row count + tuples.
pub fn put_relation(out: &mut Vec<u8>, rel: &Relation) {
    put_schema(out, rel.schema());
    put_u32(out, rel.len() as u32);
    for t in rel.tuples() {
        put_tuple(out, t);
    }
}

/// Read a [`Relation`] encoded by [`put_relation`].
pub fn get_relation(r: &mut Reader<'_>) -> CodecResult<Relation> {
    let schema = Arc::new(get_schema(r)?);
    let n = r.len()?;
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        tuples.push(get_tuple(r)?);
    }
    Ok(Relation::from_parts(schema, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::rel;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null(NullId(7)),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Decimal(1234),
            Value::str("héllo"),
            Value::Bool(true),
            Value::Date(19345),
        ]
    }

    #[test]
    fn values_round_trip() {
        for v in sample_values() {
            let mut buf = Vec::new();
            put_value(&mut buf, &v);
            let mut r = Reader::new(&buf);
            assert_eq!(get_value(&mut r).unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn relations_round_trip() {
        let relation = rel(
            &["a", "b"],
            vec![
                vec![Value::Int(1), Value::str("x")],
                vec![Value::Null(NullId(3)), Value::str("y")],
            ],
        );
        let mut buf = Vec::new();
        put_relation(&mut buf, &relation);
        let mut r = Reader::new(&buf);
        let back = get_relation(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, relation);
    }

    #[test]
    fn truncations_fail_cleanly() {
        let relation = rel(&["a"], vec![vec![Value::str("long-ish string")]]);
        let mut buf = Vec::new();
        put_relation(&mut buf, &relation);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let decoded = get_relation(&mut r).and_then(|rel| r.finish().map(|()| rel));
            assert!(decoded.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn hostile_lengths_are_capped() {
        // A u32 count far beyond the remaining bytes must fail before any
        // allocation is attempted.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = Reader::new(&buf);
        assert!(r.len().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Int(1));
        buf.push(0);
        let mut r = Reader::new(&buf);
        get_value(&mut r).unwrap();
        assert!(r.finish().is_err());
    }
}
