//! Null injection: turning complete instances into incomplete ones.
//!
//! Section 3 of the paper: attributes are split into *nullable* and
//! *non-nullable* (primary keys / `NOT NULL`); for each nullable attribute of
//! each tuple a coin is flipped with probability equal to the *null rate*, and
//! on success the value is replaced by a fresh (Codd) null. The injected
//! instance then contains roughly `null rate` percent of nulls per nullable
//! column.

use crate::database::Database;
use crate::null::NullGen;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for null injection.
#[derive(Debug, Clone)]
pub struct NullInjector {
    /// Probability in `[0, 1]` that a nullable attribute value is replaced by
    /// a null. The paper uses rates between 0.5% and 10%.
    pub null_rate: f64,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
}

impl NullInjector {
    /// Create an injector with the given null rate (0.02 = 2%) and seed.
    pub fn new(null_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&null_rate), "null rate must be in [0,1]");
        NullInjector { null_rate, seed }
    }

    /// Inject nulls into a single relation. `nullable` gives, per column,
    /// whether nulls may be injected there; it defaults to the schema's
    /// nullability flags when `None`.
    pub fn inject_relation(
        &self,
        relation: &Relation,
        nullable: Option<&[bool]>,
        gen: &NullGen,
        rng: &mut StdRng,
    ) -> Relation {
        let schema = relation.schema().clone();
        let default_nullable: Vec<bool> = schema.attrs().iter().map(|a| a.nullable).collect();
        let nullable = nullable.unwrap_or(&default_nullable);
        let tuples = relation
            .iter()
            .map(|t| {
                let values = t
                    .values()
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        if nullable[i] && v.is_const() && rng.gen::<f64>() < self.null_rate {
                            Value::Null(gen.fresh())
                        } else {
                            v.clone()
                        }
                    })
                    .collect();
                Tuple::new(values)
            })
            .collect();
        Relation::from_parts(schema, tuples)
    }

    /// Inject nulls into every table of a database, respecting each column's
    /// nullability flag. Returns a new database; the input is untouched.
    pub fn inject(&self, db: &Database) -> Database {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let gen = NullGen::new();
        let mut out = Database::new();
        for def in db.table_defs() {
            let rel = db.relation(&def.name).expect("table listed in defs");
            let injected = self.inject_relation(rel, None, &gen, &mut rng);
            let mut new_def = def.clone();
            new_def.schema = injected.schema().clone();
            out.create_table(new_def).expect("fresh database");
            *out.relation_mut(&def.name).expect("just created") = injected;
        }
        out
    }

    /// Observed fraction of nulls among nullable positions of the database —
    /// useful to check that injection produced roughly the requested rate.
    pub fn observed_rate(db: &Database) -> f64 {
        let mut nullable_positions = 0usize;
        let mut nulls = 0usize;
        for def in db.table_defs() {
            let rel = db.relation(&def.name).expect("table exists");
            let flags: Vec<bool> = rel.schema().attrs().iter().map(|a| a.nullable).collect();
            for t in rel.iter() {
                for (i, v) in t.values().iter().enumerate() {
                    if flags[i] {
                        nullable_positions += 1;
                        if v.is_null() {
                            nulls += 1;
                        }
                    }
                }
            }
        }
        if nullable_positions == 0 {
            0.0
        } else {
            nulls as f64 / nullable_positions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TableDef;
    use crate::schema::{Attribute, Schema};
    use crate::types::ValueType;

    fn complete_db(rows: usize) -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Attribute::not_null("k", ValueType::Int),
            Attribute::new("a", ValueType::Int),
            Attribute::new("b", ValueType::Int),
        ]);
        let def = TableDef::new("t", schema).with_key(&["k"]);
        db.create_table(def).unwrap();
        for i in 0..rows {
            db.relation_mut("t")
                .unwrap()
                .insert_values(vec![
                    Value::Int(i as i64),
                    Value::Int(i as i64 * 10),
                    Value::Int(i as i64 * 100),
                ])
                .unwrap();
        }
        db
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let db = complete_db(50);
        let injected = NullInjector::new(0.0, 1).inject(&db);
        assert!(injected.is_complete());
        assert_eq!(injected.total_tuples(), 50);
    }

    #[test]
    fn full_rate_nullifies_all_nullable() {
        let db = complete_db(20);
        let injected = NullInjector::new(1.0, 1).inject(&db);
        let rel = injected.relation("t").unwrap();
        for t in rel.iter() {
            assert!(t[0].is_const(), "key column must stay non-null");
            assert!(t[1].is_null());
            assert!(t[2].is_null());
        }
        assert!((NullInjector::observed_rate(&injected) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let db = complete_db(100);
        let a = NullInjector::new(0.3, 42).inject(&db);
        let b = NullInjector::new(0.3, 42).inject(&db);
        // Null ids are drawn from per-call generators starting at 1, so both
        // runs produce identical instances.
        assert_eq!(a.relation("t").unwrap().tuples(), b.relation("t").unwrap().tuples());
        let c = NullInjector::new(0.3, 43).inject(&db);
        assert_ne!(a.relation("t").unwrap().tuples(), c.relation("t").unwrap().tuples());
    }

    #[test]
    fn observed_rate_close_to_requested() {
        let db = complete_db(2000);
        let injected = NullInjector::new(0.1, 7).inject(&db);
        let rate = NullInjector::observed_rate(&injected);
        assert!((rate - 0.1).abs() < 0.03, "observed {rate}");
        injected.validate().unwrap();
    }

    #[test]
    fn injected_nulls_are_codd_nulls() {
        let db = complete_db(200);
        let injected = NullInjector::new(0.5, 3).inject(&db);
        // Every injected null id occurs exactly once.
        let mut seen = std::collections::HashSet::new();
        for t in injected.relation("t").unwrap().iter() {
            for v in t.values() {
                if let Value::Null(id) = v {
                    assert!(seen.insert(*id), "null id repeated: {id}");
                }
            }
        }
    }
}
