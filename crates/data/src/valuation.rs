//! Valuations: maps from nulls to constants.
//!
//! A valuation `v : Null(D) → Const` produces one of the complete databases
//! `v(D)` represented by an incomplete database `D` under the closed-world
//! missing-value semantics (paper, Section 2). The certain-answer oracle in
//! `certus-core` enumerates valuations; this module provides the map type and
//! the enumeration helper.

use crate::null::NullId;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// A (partial) map from null ids to constant values. Nulls not in the map are
/// left untouched by [`Valuation::apply_value`], which lets partial valuations
/// be composed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    map: BTreeMap<NullId, Value>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Valuation { map: BTreeMap::new() }
    }

    /// Build a valuation from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NullId, Value)>) -> Self {
        Valuation { map: pairs.into_iter().collect() }
    }

    /// Assign a constant to a null (the value must be a constant).
    pub fn set(&mut self, id: NullId, value: Value) {
        debug_assert!(value.is_const(), "valuations map nulls to constants");
        self.map.insert(id, value);
    }

    /// Look up the constant assigned to a null.
    pub fn get(&self, id: NullId) -> Option<&Value> {
        self.map.get(&id)
    }

    /// Number of nulls assigned.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the valuation assigns no nulls.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Apply the valuation to a value: nulls with an assignment are replaced,
    /// everything else is returned unchanged.
    pub fn apply_value(&self, v: &Value) -> Value {
        match v {
            Value::Null(id) => self.map.get(id).cloned().unwrap_or_else(|| v.clone()),
            other => other.clone(),
        }
    }

    /// Whether every null in the given iterator is assigned.
    pub fn covers(&self, nulls: impl IntoIterator<Item = NullId>) -> bool {
        nulls.into_iter().all(|id| self.map.contains_key(&id))
    }

    /// Iterate over the assignments.
    pub fn iter(&self) -> impl Iterator<Item = (&NullId, &Value)> {
        self.map.iter()
    }
}

impl fmt::Display for Valuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (id, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{id} ↦ {v}")?;
        }
        write!(f, "}}")
    }
}

/// Enumerate *all* valuations assigning each null in `nulls` a value from
/// `domain`. The number of valuations is `|domain|^|nulls|`; callers are
/// expected to keep both small (this is the exponential certain-answer oracle
/// of the paper's Section 4, used only for ground truth on tiny instances).
pub fn enumerate_valuations(nulls: &[NullId], domain: &[Value]) -> Vec<Valuation> {
    if nulls.is_empty() {
        return vec![Valuation::new()];
    }
    if domain.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(domain.len().pow(nulls.len() as u32));
    let mut indices = vec![0usize; nulls.len()];
    loop {
        let mut v = Valuation::new();
        for (i, &id) in nulls.iter().enumerate() {
            v.set(id, domain[indices[i]].clone());
        }
        out.push(v);
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == nulls.len() {
                return out;
            }
            indices[pos] += 1;
            if indices[pos] < domain.len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn apply_replaces_only_assigned_nulls() {
        let mut v = Valuation::new();
        v.set(NullId(1), Value::Int(7));
        assert_eq!(v.apply_value(&Value::Null(NullId(1))), Value::Int(7));
        assert_eq!(v.apply_value(&Value::Null(NullId(2))), Value::Null(NullId(2)));
        assert_eq!(v.apply_value(&Value::Int(3)), Value::Int(3));
    }

    #[test]
    fn tuple_application() {
        let mut v = Valuation::new();
        v.set(NullId(1), Value::str("x"));
        let t = Tuple::new(vec![Value::Null(NullId(1)), Value::Int(2)]);
        assert_eq!(t.apply(&v), Tuple::new(vec![Value::str("x"), Value::Int(2)]));
    }

    #[test]
    fn covers_check() {
        let v = Valuation::from_pairs([(NullId(1), Value::Int(1)), (NullId(2), Value::Int(2))]);
        assert!(v.covers([NullId(1), NullId(2)]));
        assert!(!v.covers([NullId(3)]));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn enumeration_counts() {
        let nulls = vec![NullId(1), NullId(2)];
        let domain = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let all = enumerate_valuations(&nulls, &domain);
        assert_eq!(all.len(), 9);
        // All valuations are distinct and total on the nulls.
        for v in &all {
            assert!(v.covers(nulls.iter().copied()));
        }
        let unique: std::collections::HashSet<String> = all.iter().map(|v| v.to_string()).collect();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    fn enumeration_edge_cases() {
        assert_eq!(enumerate_valuations(&[], &[Value::Int(1)]).len(), 1);
        assert!(enumerate_valuations(&[NullId(1)], &[]).is_empty());
    }

    #[test]
    fn display_format() {
        let v = Valuation::from_pairs([(NullId(3), Value::Int(9))]);
        assert_eq!(v.to_string(), "{⊥3 ↦ 9}");
    }
}
