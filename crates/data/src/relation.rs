//! Relations: a schema plus a set of tuples.

use crate::error::DataError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::valuation::Valuation;
use crate::value::Value;
use crate::Result;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// A relation instance: an ordered schema and a *set* of tuples.
///
/// The paper works under set semantics (bag semantics is future work,
/// Section 8); `Relation` therefore deduplicates on insertion points that
/// matter (set operations, distinct projection) while physically storing a
/// `Vec` for cheap iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        Relation { schema, tuples: Vec::new() }
    }

    /// Create a relation from a schema and tuples (arity-checked).
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Self> {
        for t in &tuples {
            if t.len() != schema.arity() {
                return Err(DataError::ArityMismatch { expected: schema.arity(), found: t.len() });
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// Create a relation without checking arities (used by operators that
    /// construct tuples of the right shape by construction).
    pub fn from_parts(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        Relation { schema, tuples }
    }

    /// The schema of the relation.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of tuples (including duplicates, if any were inserted).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples of the relation.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Iterate over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Consume the relation and return its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Insert a tuple (arity-checked).
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.len() != self.schema.arity() {
            return Err(DataError::ArityMismatch {
                expected: self.schema.arity(),
                found: tuple.len(),
            });
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Insert a tuple of raw values.
    pub fn insert_values(&mut self, values: Vec<Value>) -> Result<()> {
        self.insert(Tuple::new(values))
    }

    /// Whether the relation contains a syntactically equal tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.iter().any(|t| t == tuple)
    }

    /// Remove duplicate tuples (set semantics), preserving first occurrences.
    ///
    /// Deduplication hashes *borrowed* rows: no tuple is cloned into the
    /// scratch set, so the only writes are the in-place removals.
    pub fn dedup(&mut self) {
        let mut seen: HashSet<&Tuple> = HashSet::with_capacity(self.tuples.len());
        let keep: Vec<bool> = self.tuples.iter().map(|t| seen.insert(t)).collect();
        drop(seen);
        let mut flags = keep.into_iter();
        self.tuples.retain(|_| flags.next().expect("one flag per tuple"));
    }

    /// A deduplicated copy of this relation.
    pub fn distinct(&self) -> Relation {
        self.clone().into_distinct()
    }

    /// Deduplicate in place, consuming the relation (no tuple clones).
    pub fn into_distinct(mut self) -> Relation {
        self.dedup();
        self
    }

    /// Set union with another relation (schemas must be union compatible;
    /// the result uses this relation's schema).
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        self.clone().union_owned(other)
    }

    /// Set union consuming the left side: the left tuples are never cloned,
    /// only moved and extended with the right side's.
    pub fn union_owned(mut self, other: &Relation) -> Result<Relation> {
        self.check_compatible(other, "union")?;
        self.tuples.extend(other.tuples.iter().cloned());
        self.dedup();
        Ok(self)
    }

    /// Set difference (syntactic tuple equality).
    pub fn difference(&self, other: &Relation) -> Result<Relation> {
        self.clone().difference_owned(other)
    }

    /// Set difference consuming the left side (surviving tuples are moved,
    /// not cloned).
    pub fn difference_owned(mut self, other: &Relation) -> Result<Relation> {
        self.check_compatible(other, "difference")?;
        let right: HashSet<&Tuple> = other.tuples.iter().collect();
        let keep: Vec<bool> = self.tuples.iter().map(|t| !right.contains(t)).collect();
        drop(right);
        let mut flags = keep.into_iter();
        self.tuples.retain(|_| flags.next().expect("one flag per tuple"));
        self.dedup();
        Ok(self)
    }

    /// Set intersection (syntactic tuple equality).
    pub fn intersect(&self, other: &Relation) -> Result<Relation> {
        self.clone().intersect_owned(other)
    }

    /// Set intersection consuming the left side (surviving tuples are moved,
    /// not cloned).
    pub fn intersect_owned(mut self, other: &Relation) -> Result<Relation> {
        self.check_compatible(other, "intersection")?;
        let right: HashSet<&Tuple> = other.tuples.iter().collect();
        let keep: Vec<bool> = self.tuples.iter().map(|t| right.contains(t)).collect();
        drop(right);
        let mut flags = keep.into_iter();
        self.tuples.retain(|_| flags.next().expect("one flag per tuple"));
        self.dedup();
        Ok(self)
    }

    /// Apply a valuation to every tuple, producing a (possibly complete)
    /// relation.
    pub fn apply(&self, v: &Valuation) -> Relation {
        let mut out = Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.iter().map(|t| t.apply(v)).collect(),
        };
        out.dedup();
        out
    }

    /// Whether any tuple contains a null.
    pub fn has_nulls(&self) -> bool {
        self.tuples.iter().any(Tuple::has_null)
    }

    /// All constants appearing in the relation.
    pub fn constants(&self) -> HashSet<Value> {
        let mut out = HashSet::new();
        for t in &self.tuples {
            for v in t.values() {
                if v.is_const() {
                    out.insert(v.clone());
                }
            }
        }
        out
    }

    /// All null ids appearing in the relation.
    pub fn null_ids(&self) -> HashSet<crate::null::NullId> {
        let mut out = HashSet::new();
        for t in &self.tuples {
            for v in t.values() {
                if let Value::Null(id) = v {
                    out.insert(*id);
                }
            }
        }
        out
    }

    /// Sort tuples (for deterministic display and comparisons in tests).
    pub fn sorted(&self) -> Relation {
        let mut r = self.clone();
        r.tuples.sort();
        r
    }

    fn check_compatible(&self, other: &Relation, context: &str) -> Result<()> {
        if !self.schema.union_compatible(&other.schema) {
            return Err(DataError::SchemaMismatch {
                context: context.to_string(),
                left: self.schema.to_string(),
                right: other.schema.to_string(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        write!(f, "  [{} tuples]", self.tuples.len())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::rel;
    use crate::null::NullId;

    #[test]
    fn insert_checks_arity() {
        let mut r = Relation::empty(Schema::of_names(&["a", "b"]).shared());
        assert!(r.insert_values(vec![Value::Int(1), Value::Int(2)]).is_ok());
        assert!(r.insert_values(vec![Value::Int(1)]).is_err());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn set_operations_are_syntactic() {
        let r = rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Null(NullId(1))]]);
        let s = rel(&["a"], vec![vec![Value::Null(NullId(1))], vec![Value::Int(2)]]);
        let diff = r.difference(&s).unwrap();
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(&Tuple::new(vec![Value::Int(1)])));
        let inter = r.intersect(&s).unwrap();
        assert_eq!(inter.len(), 1);
        assert!(inter.contains(&Tuple::new(vec![Value::Null(NullId(1))])));
        let uni = r.union(&s).unwrap();
        assert_eq!(uni.len(), 3);
    }

    #[test]
    fn dedup_removes_duplicates() {
        let mut r =
            rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(1)], vec![Value::Int(2)]]);
        r.dedup();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn incompatible_schemas_error() {
        let r = rel(&["a"], vec![]);
        let s = rel(&["a", "b"], vec![]);
        assert!(r.union(&s).is_err());
        assert!(r.difference(&s).is_err());
    }

    #[test]
    fn constants_and_nulls_collection() {
        let r = rel(
            &["a", "b"],
            vec![vec![Value::Int(1), Value::Null(NullId(7))], vec![Value::str("x"), Value::Int(1)]],
        );
        assert!(r.has_nulls());
        let consts = r.constants();
        assert_eq!(consts.len(), 2);
        assert!(consts.contains(&Value::Int(1)));
        assert_eq!(r.null_ids().len(), 1);
    }

    #[test]
    fn apply_valuation_grounds_relation() {
        let r = rel(&["a"], vec![vec![Value::Null(NullId(1))], vec![Value::Int(1)]]);
        let mut v = Valuation::new();
        v.set(NullId(1), Value::Int(1));
        let g = r.apply(&v);
        // Both tuples collapse to (1) and set semantics dedups them.
        assert_eq!(g.len(), 1);
        assert!(!g.has_nulls());
    }
}
