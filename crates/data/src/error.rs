//! Error type for the data layer.

use std::fmt;

/// Errors produced by the data layer (schema mismatches, unknown attributes,
/// type errors, malformed instances).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// An attribute name could not be resolved against a schema.
    UnknownAttribute {
        /// The attribute that was requested.
        name: String,
        /// The attributes that were available.
        available: Vec<String>,
    },
    /// An attribute name resolves to more than one column.
    AmbiguousAttribute {
        /// The attribute that was requested.
        name: String,
        /// The columns it matched.
        matches: Vec<String>,
    },
    /// A tuple's arity does not match the schema it is inserted into.
    ArityMismatch {
        /// Expected number of columns.
        expected: usize,
        /// Number of values provided.
        found: usize,
    },
    /// Two schemas that were required to be identical differ.
    SchemaMismatch {
        /// Description of the context in which the mismatch occurred.
        context: String,
        /// Left-hand schema rendering.
        left: String,
        /// Right-hand schema rendering.
        right: String,
    },
    /// A value of an unexpected type was encountered.
    TypeError {
        /// Description of the expectation that was violated.
        expected: String,
        /// Rendering of the offending value.
        found: String,
    },
    /// A named table does not exist in the database/catalog.
    UnknownTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// A NOT NULL / primary-key column received a null value.
    NullInNonNullable {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Generic invariant violation with a message.
    Invalid(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UnknownAttribute { name, available } => {
                write!(f, "unknown attribute `{name}` (available: {})", available.join(", "))
            }
            DataError::AmbiguousAttribute { name, matches } => {
                write!(f, "ambiguous attribute `{name}` (matches: {})", matches.join(", "))
            }
            DataError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected} columns, found {found}")
            }
            DataError::SchemaMismatch { context, left, right } => {
                write!(f, "schema mismatch in {context}: {left} vs {right}")
            }
            DataError::TypeError { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            DataError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            DataError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            DataError::NullInNonNullable { table, column } => {
                write!(f, "null value in non-nullable column {table}.{column}")
            }
            DataError::Invalid(msg) => write!(f, "invalid data: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_attribute() {
        let e = DataError::UnknownAttribute {
            name: "x".into(),
            available: vec!["a".into(), "b".into()],
        };
        assert_eq!(e.to_string(), "unknown attribute `x` (available: a, b)");
    }

    #[test]
    fn display_arity() {
        let e = DataError::ArityMismatch { expected: 3, found: 2 };
        assert!(e.to_string().contains("expected 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DataError::UnknownTable("t".into()));
    }
}
