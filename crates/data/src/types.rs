//! Value types for schema columns.

use std::fmt;

/// The SQL-ish type of a column. Incomplete databases in the paper are typed
/// over a single domain `Const`, but real instances (and the TPC-H schema)
/// use several base types; the translations are oblivious to the distinction
/// (paper, Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit floating point.
    Float,
    /// Fixed-point decimal stored as integer hundredths (TPC-H money columns).
    Decimal,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Calendar date stored as days since 1970-01-01.
    Date,
    /// Unconstrained type (used for intermediate results and tests).
    Any,
}

impl ValueType {
    /// Whether a value of type `other` can be stored in a column of this type
    /// without loss of meaning (numeric types are mutually compatible).
    pub fn accepts(self, other: ValueType) -> bool {
        use ValueType::*;
        if self == Any || other == Any || self == other {
            return true;
        }
        matches!(
            (self, other),
            (Int, Decimal)
                | (Decimal, Int)
                | (Float, Int)
                | (Int, Float)
                | (Float, Decimal)
                | (Decimal, Float)
        )
    }

    /// Whether this is a numeric type.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueType::Int | ValueType::Float | ValueType::Decimal)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Decimal => "DECIMAL",
            ValueType::Str => "VARCHAR",
            ValueType::Bool => "BOOLEAN",
            ValueType::Date => "DATE",
            ValueType::Any => "ANY",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_accepts_everything() {
        for t in [ValueType::Int, ValueType::Str, ValueType::Date] {
            assert!(ValueType::Any.accepts(t));
            assert!(t.accepts(ValueType::Any));
        }
    }

    #[test]
    fn numeric_cross_acceptance() {
        assert!(ValueType::Int.accepts(ValueType::Decimal));
        assert!(ValueType::Decimal.accepts(ValueType::Float));
        assert!(!ValueType::Int.accepts(ValueType::Str));
    }

    #[test]
    fn is_numeric() {
        assert!(ValueType::Decimal.is_numeric());
        assert!(!ValueType::Date.is_numeric());
    }

    #[test]
    fn display_names() {
        assert_eq!(ValueType::Str.to_string(), "VARCHAR");
        assert_eq!(ValueType::Date.to_string(), "DATE");
    }
}
