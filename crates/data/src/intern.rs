//! Per-database string interning.
//!
//! The TPC-H workload repeats a small set of strings millions of times
//! (order statuses, nation and region names, part-name words), and the
//! translations join and deduplicate over them. [`StrPool`] deduplicates the
//! *storage*: every distinct string is allocated exactly once as an
//! `Arc<str>`, and every occurrence shares it. On top of the storage dedup
//! the pool assigns each distinct string a dense [`StrId`], which is what the
//! columnar layer ([`crate::column`]) stores in string columns — comparing or
//! hashing an interned string column element is a `u32` operation, not a
//! byte-wise string walk.
//!
//! The pool is interior-mutable (`RwLock`) so the engine can intern through a
//! shared `&Database` during execution; bulk operations (column extraction)
//! take the lock once per column, not once per row.

use certus_obs::metrics::{registry, Gauge};
use certus_obs::names;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// The process-wide `interner.strings` gauge: updated on every pool growth
/// (write-path only, so the read-lock fast path stays untouched). With
/// several live pools the gauge reports the most recently grown one —
/// sessions hold one database, so in practice that is *the* interner.
fn interner_gauge() -> &'static Gauge {
    static H: OnceLock<Arc<Gauge>> = OnceLock::new();
    H.get_or_init(|| registry().gauge(names::INTERNER_STRINGS))
}

/// Dense identifier of an interned string. Ids are assigned in first-intern
/// order and are only meaningful relative to the pool that issued them; two
/// strings interned in the same pool are equal iff their ids are equal.
pub type StrId = u32;

#[derive(Debug, Default)]
struct PoolInner {
    map: HashMap<Arc<str>, StrId>,
    strings: Vec<Arc<str>>,
}

impl PoolInner {
    fn intern(&mut self, s: &str) -> (StrId, Arc<str>) {
        if let Some((arc, &id)) = self.map.get_key_value(s) {
            return (id, arc.clone());
        }
        let arc: Arc<str> = Arc::from(s);
        let id = self.strings.len() as StrId;
        self.strings.push(arc.clone());
        self.map.insert(arc.clone(), id);
        (id, arc)
    }

    fn intern_arc(&mut self, s: &Arc<str>) -> StrId {
        if let Some(&id) = self.map.get(s.as_ref()) {
            return id;
        }
        let id = self.strings.len() as StrId;
        self.strings.push(s.clone());
        self.map.insert(s.clone(), id);
        id
    }
}

/// A deduplicating string pool (see the module docs). Cloning a pool clones
/// its table but shares the underlying string allocations.
#[derive(Debug, Default)]
pub struct StrPool {
    inner: RwLock<PoolInner>,
}

impl StrPool {
    /// An empty pool.
    pub fn new() -> Self {
        StrPool::default()
    }

    /// Intern a string, returning its id and the shared allocation.
    pub fn intern(&self, s: &str) -> (StrId, Arc<str>) {
        // Fast path: already interned, read lock only.
        if let Some((arc, &id)) =
            self.inner.read().expect("pool lock").map.get_key_value(s).map(|(a, i)| (a.clone(), i))
        {
            return (id, arc);
        }
        let mut inner = self.inner.write().expect("pool lock");
        let out = inner.intern(s);
        interner_gauge().set(inner.strings.len() as u64);
        out
    }

    /// Intern an existing `Arc<str>`, reusing its allocation when the string
    /// is new to the pool.
    pub fn intern_arc(&self, s: &Arc<str>) -> StrId {
        if let Some(&id) = self.inner.read().expect("pool lock").map.get(s.as_ref()) {
            return id;
        }
        let mut inner = self.inner.write().expect("pool lock");
        let id = inner.intern_arc(s);
        interner_gauge().set(inner.strings.len() as u64);
        id
    }

    /// The id of an already interned string, if any. Strings absent from the
    /// pool can never equal an interned column element.
    pub fn lookup(&self, s: &str) -> Option<StrId> {
        self.inner.read().expect("pool lock").map.get(s).copied()
    }

    /// The shared allocation for an id (panics on a foreign id — ids are only
    /// valid for the pool that issued them).
    pub fn resolve(&self, id: StrId) -> Arc<str> {
        self.inner.read().expect("pool lock").strings[id as usize].clone()
    }

    /// Bulk-intern a batch of `Arc<str>` values under a single lock
    /// acquisition (used by column extraction: one lock per column, not one
    /// per row). When every string is already interned — the steady state
    /// once the loaders have run — a shared read lock suffices, so parallel
    /// workers extracting string columns never serialize on the pool.
    pub fn intern_all<'a>(&self, values: impl Iterator<Item = Option<&'a Arc<str>>>) -> Vec<StrId> {
        let vals: Vec<Option<&Arc<str>>> = values.collect();
        {
            let inner = self.inner.read().expect("pool lock");
            let hits: Option<Vec<StrId>> = vals
                .iter()
                .map(|v| match v {
                    Some(s) => inner.map.get(s.as_ref()).copied(),
                    None => Some(0),
                })
                .collect();
            if let Some(ids) = hits {
                return ids;
            }
        }
        let mut inner = self.inner.write().expect("pool lock");
        let ids = vals.into_iter().map(|v| v.map(|s| inner.intern_arc(s)).unwrap_or(0)).collect();
        interner_gauge().set(inner.strings.len() as u64);
        ids
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().expect("pool lock").strings.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for StrPool {
    fn clone(&self) -> Self {
        let inner = self.inner.read().expect("pool lock");
        StrPool {
            inner: RwLock::new(PoolInner {
                map: inner.map.clone(),
                strings: inner.strings.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_storage_and_ids() {
        let pool = StrPool::new();
        let (a, arc_a) = pool.intern("FURNITURE");
        let (b, arc_b) = pool.intern("FURNITURE");
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&arc_a, &arc_b));
        let (c, _) = pool.intern("BUILDING");
        assert_ne!(a, c);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn intern_arc_reuses_the_allocation() {
        let pool = StrPool::new();
        let s: Arc<str> = Arc::from("almond antique");
        let id = pool.intern_arc(&s);
        assert!(Arc::ptr_eq(&pool.resolve(id), &s));
        // A content-equal but distinct allocation maps to the same id…
        let t: Arc<str> = Arc::from("almond antique");
        assert_eq!(pool.intern_arc(&t), id);
        // …and resolution keeps returning the first allocation.
        assert!(Arc::ptr_eq(&pool.resolve(id), &s));
    }

    #[test]
    fn lookup_misses_for_foreign_strings() {
        let pool = StrPool::new();
        pool.intern("x");
        assert!(pool.lookup("x").is_some());
        assert!(pool.lookup("y").is_none());
    }

    #[test]
    fn clone_shares_allocations() {
        let pool = StrPool::new();
        let (id, arc) = pool.intern("shared");
        let copy = pool.clone();
        assert!(Arc::ptr_eq(&copy.resolve(id), &arc));
        // The copy is independent: new strings in one don't appear in the other.
        copy.intern("only in copy");
        assert!(pool.lookup("only in copy").is_none());
    }

    #[test]
    fn intern_all_assigns_ids_in_one_pass() {
        let pool = StrPool::new();
        let vals: Vec<Arc<str>> = vec![Arc::from("a"), Arc::from("b"), Arc::from("a")];
        let ids = pool.intern_all(vals.iter().map(Some));
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[1]);
        assert_eq!(pool.len(), 2);
    }
}
