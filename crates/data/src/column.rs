//! Columnar batches: typed column vectors with per-column null bitmaps.
//!
//! The row representation ([`Tuple`] = `Vec<Value>`) is what the operator
//! semantics are defined over, but moving one heap-allocated row at a time
//! through a pipeline is the dominant cost once plans are compiled. This
//! module provides the batch-at-a-time alternative:
//!
//! * [`ColumnData`] — a typed vector per column (`i64` / `f64` / fixed-point
//!   decimal / date / bool / interned [`StrId`]s), with a [`Values`]
//!   fallback for columns that mix variants (or are entirely null), so
//!   *every* relation has a columnar form;
//! * [`NullMask`] — a bitmap marking which rows are null **plus the marked
//!   null ids** for those rows. The paper's data model is built on marked
//!   nulls `⊥ᵢ` (two occurrences of the same id denote the same unknown),
//!   so a bare validity bitmap would lose information that naive evaluation
//!   and syntactic set operations depend on; the mask preserves it exactly;
//! * [`Batch`] — a schema plus one [`Column`] per attribute, convertible to
//!   and from rows without loss ([`Batch::from_rows`] / [`Batch::to_rows`]);
//! * [`TruthMask`] — a three-valued bitmask (true/unknown bit planes) with
//!   Kleene connectives as word-wise bit operations, the result type of
//!   vectorized predicate evaluation.
//!
//! String columns store dense ids from the database's [`StrPool`]; two
//! interned column elements are equal iff their ids are equal, which is what
//! makes hashing and comparing string join keys cheap.
//!
//! [`Values`]: ColumnData::Values

use crate::intern::{StrId, StrPool};
use crate::null::NullId;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::truth::Truth;
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// A bitmap of null rows plus their marked null ids.
///
/// `is_null(i)` is a bit test; for rows where it holds, `null_id(i)` returns
/// the marked null id, so converting back to rows reproduces the exact
/// original values. Rows that are not null have no id.
#[derive(Debug, Clone, PartialEq)]
pub struct NullMask {
    bits: Vec<u64>,
    len: usize,
    /// One raw id slot per row, allocated lazily on the first null.
    ids: Vec<u64>,
}

impl NullMask {
    /// An all-valid (no nulls) mask over `len` rows.
    pub fn new(len: usize) -> Self {
        NullMask { bits: vec![0; len.div_ceil(64)], len, ids: Vec::new() }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mark row `i` as the null `⊥ᵢ` with the given id.
    pub fn set_null(&mut self, i: usize, id: NullId) {
        self.bits[i / 64] |= 1 << (i % 64);
        if self.ids.is_empty() {
            self.ids = vec![0; self.len];
        }
        self.ids[i] = id.0;
    }

    /// Whether row `i` is null.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    /// The marked null id of row `i`, if that row is null.
    pub fn null_id(&self, i: usize) -> Option<NullId> {
        self.is_null(i).then(|| NullId(self.ids[i]))
    }

    /// Raw id slot of row `i` (only meaningful when [`NullMask::is_null`]).
    #[inline]
    pub fn raw_id(&self, i: usize) -> u64 {
        if self.ids.is_empty() {
            0
        } else {
            self.ids[i]
        }
    }

    /// Whether any row is null.
    pub fn any_null(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Number of null rows.
    pub fn count_nulls(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// The typed vector behind one column of a [`Batch`].
///
/// Typed variants hold a placeholder at null positions (the [`NullMask`]
/// disambiguates); [`ColumnData::Values`] is the loss-free fallback for
/// columns that mix value variants or contain only nulls.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats (raw, un-normalised — hashing/equality normalise).
    Float(Vec<f64>),
    /// Fixed-point decimals in hundredths.
    Decimal(Vec<i64>),
    /// Dates as days since 1970-01-01.
    Date(Vec<i32>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Interned string ids (resolved through the issuing [`StrPool`]).
    Str(Vec<StrId>),
    /// Loss-free fallback: the values themselves.
    Values(Vec<Value>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) | ColumnData::Decimal(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Values(v) => v.len(),
        }
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether two columns use the same typed representation (the
    /// precondition for representation-specific hashing and equality).
    pub fn same_repr(&self, other: &ColumnData) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
    }

    /// Whether this is the [`ColumnData::Values`] fallback.
    pub fn is_fallback(&self) -> bool {
        matches!(self, ColumnData::Values(_))
    }
}

/// One column of a batch: typed data plus the null mask.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    nulls: NullMask,
}

impl Column {
    /// Build a column from a slice of values (see [`Column::extract`] for
    /// the tuple-position variant).
    pub fn from_values(values: &[Value], pool: &StrPool) -> Column {
        Self::build(values.len(), |i| &values[i], pool)
    }

    /// Extract the column at `pos` from a slice of rows.
    pub fn extract(rows: &[Tuple], pos: usize, pool: &StrPool) -> Column {
        Self::build(rows.len(), |i| &rows[i][pos], pool)
    }

    fn build<'a>(len: usize, get: impl Fn(usize) -> &'a Value, pool: &StrPool) -> Column {
        // Pass 1: pick the representation — the variant shared by every
        // non-null value, or the fallback when variants mix (or every row is
        // null, in which case there is nothing to type the column by).
        let mut repr: Option<&Value> = None;
        let mut uniform = true;
        for i in 0..len {
            let v = get(i);
            if v.is_null() {
                continue;
            }
            match repr {
                None => repr = Some(v),
                Some(first) => {
                    if std::mem::discriminant(first) != std::mem::discriminant(v) {
                        uniform = false;
                        break;
                    }
                }
            }
        }
        let mut nulls = NullMask::new(len);
        let fill_nulls = |nulls: &mut NullMask| {
            for i in 0..len {
                if let Value::Null(id) = get(i) {
                    nulls.set_null(i, *id);
                }
            }
        };
        let data = match (uniform, repr) {
            (true, Some(Value::Int(_))) => {
                fill_nulls(&mut nulls);
                ColumnData::Int(
                    (0..len).map(|i| if let Value::Int(x) = get(i) { *x } else { 0 }).collect(),
                )
            }
            (true, Some(Value::Float(_))) => {
                fill_nulls(&mut nulls);
                ColumnData::Float(
                    (0..len).map(|i| if let Value::Float(x) = get(i) { *x } else { 0.0 }).collect(),
                )
            }
            (true, Some(Value::Decimal(_))) => {
                fill_nulls(&mut nulls);
                ColumnData::Decimal(
                    (0..len).map(|i| if let Value::Decimal(x) = get(i) { *x } else { 0 }).collect(),
                )
            }
            (true, Some(Value::Date(_))) => {
                fill_nulls(&mut nulls);
                ColumnData::Date(
                    (0..len).map(|i| if let Value::Date(x) = get(i) { *x } else { 0 }).collect(),
                )
            }
            (true, Some(Value::Bool(_))) => {
                fill_nulls(&mut nulls);
                ColumnData::Bool(
                    (0..len)
                        .map(|i| if let Value::Bool(x) = get(i) { *x } else { false })
                        .collect(),
                )
            }
            (true, Some(Value::Str(_))) => {
                fill_nulls(&mut nulls);
                // One lock acquisition for the whole column.
                let ids = pool.intern_all((0..len).map(|i| {
                    if let Value::Str(s) = get(i) {
                        Some(s)
                    } else {
                        None
                    }
                }));
                ColumnData::Str(ids)
            }
            // Mixed variants, all-null, or empty: keep the values as-is.
            _ => {
                fill_nulls(&mut nulls);
                ColumnData::Values((0..len).map(|i| get(i).clone()).collect())
            }
        };
        Column { data, nulls }
    }

    /// The typed data.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null mask.
    pub fn nulls(&self) -> &NullMask {
        &self.nulls
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether row `i` is null.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.is_null(i)
    }

    /// Reconstruct the value at row `i` (exactly the value the column was
    /// built from; string ids resolve through the pool).
    pub fn value_at(&self, i: usize, pool: &StrPool) -> Value {
        if let Some(id) = self.nulls.null_id(i) {
            // The fallback stores nulls in place; typed columns store a
            // placeholder — either way the mask is authoritative.
            return Value::Null(id);
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Decimal(v) => Value::Decimal(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Str(v) => Value::Str(pool.resolve(v[i])),
            ColumnData::Values(v) => v[i].clone(),
        }
    }
}

/// A horizontal slice of a relation in columnar form.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    schema: Arc<Schema>,
    len: usize,
    columns: Vec<Column>,
}

impl Batch {
    /// Convert a slice of rows (all matching `schema`) into a batch.
    pub fn from_rows(schema: Arc<Schema>, rows: &[Tuple], pool: &StrPool) -> Batch {
        let columns =
            (0..schema.arity()).map(|pos| Column::extract(rows, pos, pool)).collect::<Vec<_>>();
        Batch { schema, len: rows.len(), columns }
    }

    /// The schema of the batch.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column at a position.
    pub fn column(&self, pos: usize) -> &Column {
        &self.columns[pos]
    }

    /// Reconstruct row `i`.
    pub fn row(&self, i: usize, pool: &StrPool) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value_at(i, pool)).collect())
    }

    /// Convert the batch back to rows (the exact rows it was built from).
    pub fn to_rows(&self, pool: &StrPool) -> Vec<Tuple> {
        (0..self.len).map(|i| self.row(i, pool)).collect()
    }
}

impl Relation {
    /// Split the relation into columnar batches of at most `morsel_size`
    /// rows (one batch of zero rows for an empty relation, so the schema is
    /// always carried).
    pub fn to_batches(&self, morsel_size: usize, pool: &StrPool) -> Vec<Batch> {
        let size = morsel_size.max(1);
        if self.is_empty() {
            return vec![Batch::from_rows(self.schema().clone(), &[], pool)];
        }
        self.tuples()
            .chunks(size)
            .map(|chunk| Batch::from_rows(self.schema().clone(), chunk, pool))
            .collect()
    }

    /// Reassemble a relation from batches (inverse of
    /// [`Relation::to_batches`]; the schema comes from the first batch).
    pub fn from_batches(batches: &[Batch], pool: &StrPool) -> Option<Relation> {
        let first = batches.first()?;
        let mut tuples = Vec::with_capacity(batches.iter().map(Batch::len).sum());
        for b in batches {
            tuples.extend(b.to_rows(pool));
        }
        Some(Relation::from_parts(first.schema().clone(), tuples))
    }
}

/// A vector of three-valued truth values as two bit planes (`true` and
/// `unknown`; `false` is the absence of both). Kleene connectives are
/// word-wise bit operations. Bits past `len` are kept zero.
#[derive(Debug, Clone, PartialEq)]
pub struct TruthMask {
    t: Vec<u64>,
    u: Vec<u64>,
    len: usize,
}

impl TruthMask {
    /// A mask of `len` copies of the given truth value.
    pub fn fill(len: usize, truth: Truth) -> TruthMask {
        let words = len.div_ceil(64);
        let mut m = match truth {
            Truth::True => TruthMask { t: vec![u64::MAX; words], u: vec![0; words], len },
            Truth::Unknown => TruthMask { t: vec![0; words], u: vec![u64::MAX; words], len },
            Truth::False => TruthMask { t: vec![0; words], u: vec![0; words], len },
        };
        m.trim();
        m
    }

    /// An all-false mask.
    pub fn falses(len: usize) -> TruthMask {
        TruthMask::fill(len, Truth::False)
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero the bits past `len` (the connective loops operate on whole
    /// words).
    fn trim(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(w) = self.t.last_mut() {
                *w &= (1u64 << rem) - 1;
            }
            if let Some(w) = self.u.last_mut() {
                *w &= (1u64 << rem) - 1;
            }
        }
    }

    /// Set row `i`.
    pub fn set(&mut self, i: usize, truth: Truth) {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        match truth {
            Truth::True => {
                self.t[w] |= b;
                self.u[w] &= !b;
            }
            Truth::Unknown => {
                self.u[w] |= b;
                self.t[w] &= !b;
            }
            Truth::False => {
                self.t[w] &= !b;
                self.u[w] &= !b;
            }
        }
    }

    /// The truth value of row `i`.
    pub fn get(&self, i: usize) -> Truth {
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if self.t[w] & b != 0 {
            Truth::True
        } else if self.u[w] & b != 0 {
            Truth::Unknown
        } else {
            Truth::False
        }
    }

    /// Kleene conjunction, in place.
    pub fn and_with(&mut self, other: &TruthMask) {
        debug_assert_eq!(self.len, other.len);
        for i in 0..self.t.len() {
            let t = self.t[i] & other.t[i];
            let u = (self.t[i] | self.u[i]) & (other.t[i] | other.u[i]) & !t;
            self.t[i] = t;
            self.u[i] = u;
        }
    }

    /// Kleene disjunction, in place.
    pub fn or_with(&mut self, other: &TruthMask) {
        debug_assert_eq!(self.len, other.len);
        for i in 0..self.t.len() {
            let t = self.t[i] | other.t[i];
            self.u[i] = (self.u[i] | other.u[i]) & !t;
            self.t[i] = t;
        }
    }

    /// Kleene negation, in place (swaps true and false, keeps unknown).
    pub fn negate(&mut self) {
        for i in 0..self.t.len() {
            self.t[i] = !self.t[i] & !self.u[i];
        }
        self.trim();
    }

    /// Number of rows that are [`Truth::True`].
    pub fn count_true(&self) -> usize {
        self.t.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether any row is [`Truth::True`].
    pub fn any_true(&self) -> bool {
        self.t.iter().any(|&w| w != 0)
    }

    /// Visit every row index whose value is [`Truth::True`], in order.
    pub fn for_each_true(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.t.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::rel;

    fn pool() -> StrPool {
        StrPool::new()
    }

    #[test]
    fn typed_columns_roundtrip() {
        let p = pool();
        let vals = vec![Value::Int(3), Value::Null(NullId(7)), Value::Int(-5)];
        let c = Column::from_values(&vals, &p);
        assert!(matches!(c.data(), ColumnData::Int(_)));
        assert!(c.is_null(1));
        assert_eq!(c.nulls().count_nulls(), 1);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&c.value_at(i, &p), v);
        }
    }

    #[test]
    fn string_columns_intern_ids() {
        let p = pool();
        let vals = vec![Value::str("FURNITURE"), Value::str("BUILDING"), Value::str("FURNITURE")];
        let c = Column::from_values(&vals, &p);
        match c.data() {
            ColumnData::Str(ids) => {
                assert_eq!(ids[0], ids[2]);
                assert_ne!(ids[0], ids[1]);
            }
            other => panic!("expected Str column, got {other:?}"),
        }
        assert_eq!(c.value_at(2, &p), Value::str("FURNITURE"));
    }

    #[test]
    fn mixed_and_all_null_columns_fall_back_to_values() {
        let p = pool();
        let mixed = vec![Value::Int(1), Value::str("x")];
        assert!(Column::from_values(&mixed, &p).data().is_fallback());
        let all_null = vec![Value::Null(NullId(1)), Value::Null(NullId(2))];
        let c = Column::from_values(&all_null, &p);
        assert!(c.data().is_fallback());
        assert_eq!(c.value_at(0, &p), Value::Null(NullId(1)));
        assert_eq!(c.value_at(1, &p), Value::Null(NullId(2)));
        // Empty columns are the fallback too, and roundtrip trivially.
        let empty = Column::from_values(&[], &p);
        assert!(empty.is_empty());
        assert!(!empty.nulls().any_null());
    }

    #[test]
    fn batch_roundtrips_rows() {
        let p = pool();
        let r = rel(
            &["a", "b", "c"],
            vec![
                vec![Value::Int(1), Value::str("x"), Value::Null(NullId(4))],
                vec![Value::Null(NullId(9)), Value::str("y"), Value::decimal(1.25)],
            ],
        );
        let b = Batch::from_rows(r.schema().clone(), r.tuples(), &p);
        assert_eq!(b.len(), 2);
        assert_eq!(b.arity(), 3);
        assert_eq!(b.to_rows(&p), r.tuples());
        assert_eq!(b.row(1, &p), r.tuples()[1]);
    }

    #[test]
    fn relation_to_batches_roundtrips_across_morsels() {
        let p = pool();
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| {
                if i % 3 == 0 {
                    vec![Value::Null(NullId(i as u64 + 1)), Value::str("s")]
                } else {
                    vec![Value::Int(i), Value::str("t")]
                }
            })
            .collect();
        let r = rel(&["a", "b"], rows);
        let batches = r.to_batches(4, &p);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches.iter().map(Batch::len).sum::<usize>(), 10);
        let back = Relation::from_batches(&batches, &p).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_relation_keeps_schema_through_batches() {
        let p = pool();
        let r = rel(&["a"], vec![]);
        let batches = r.to_batches(8, &p);
        assert_eq!(batches.len(), 1);
        assert!(batches[0].is_empty());
        let back = Relation::from_batches(&batches, &p).unwrap();
        assert_eq!(back, r);
        assert!(Relation::from_batches(&[], &p).is_none());
    }

    #[test]
    fn truth_mask_matches_kleene_tables() {
        use Truth::*;
        for a in [False, Unknown, True] {
            for b in [False, Unknown, True] {
                let mut ma = TruthMask::fill(70, a);
                let mb = TruthMask::fill(70, b);
                ma.and_with(&mb);
                assert_eq!(ma.get(69), a.and(b), "{a:?} AND {b:?}");
                let mut mo = TruthMask::fill(70, a);
                mo.or_with(&mb);
                assert_eq!(mo.get(0), a.or(b), "{a:?} OR {b:?}");
                let mut mn = TruthMask::fill(70, a);
                mn.negate();
                assert_eq!(mn.get(42), a.negate(), "NOT {a:?}");
            }
        }
    }

    #[test]
    fn truth_mask_set_get_and_iteration() {
        let mut m = TruthMask::falses(130);
        m.set(0, Truth::True);
        m.set(64, Truth::Unknown);
        m.set(129, Truth::True);
        assert_eq!(m.get(0), Truth::True);
        assert_eq!(m.get(64), Truth::Unknown);
        assert_eq!(m.get(1), Truth::False);
        assert_eq!(m.count_true(), 2);
        let mut seen = Vec::new();
        m.for_each_true(|i| seen.push(i));
        assert_eq!(seen, vec![0, 129]);
        // Overwriting changes the plane bits consistently.
        m.set(0, Truth::False);
        assert_eq!(m.get(0), Truth::False);
        assert_eq!(m.count_true(), 1);
        // Negation never sets bits past `len`.
        m.negate();
        assert_eq!(m.count_true(), 128);
    }
}
