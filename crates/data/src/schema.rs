//! Relation schemas: named, typed, nullability-annotated columns.

use crate::error::DataError;
use crate::types::ValueType;
use crate::Result;
use std::fmt;
use std::sync::Arc;

/// A single column of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Column name, possibly qualified (`"l1.l_suppkey"`).
    pub name: String,
    /// Declared type of the column.
    pub ty: ValueType,
    /// Whether nulls may occur in this column. Primary-key columns and
    /// `NOT NULL` columns are non-nullable (paper, Section 3).
    pub nullable: bool,
}

impl Attribute {
    /// A nullable attribute of the given type.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Attribute { name: name.into(), ty, nullable: true }
    }

    /// A non-nullable attribute of the given type.
    pub fn not_null(name: impl Into<String>, ty: ValueType) -> Self {
        Attribute { name: name.into(), ty, nullable: false }
    }

    /// The unqualified part of the column name (after the last `.`).
    pub fn base_name(&self) -> &str {
        match self.name.rfind('.') {
            Some(i) => &self.name[i + 1..],
            None => &self.name,
        }
    }

    /// A copy of the attribute with a qualifier prefix (`alias.name`).
    pub fn qualified(&self, qualifier: &str) -> Attribute {
        Attribute {
            name: format!("{qualifier}.{}", self.base_name()),
            ty: self.ty,
            nullable: self.nullable,
        }
    }
}

/// An ordered list of attributes describing the columns of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from a list of attributes.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        Schema { attrs }
    }

    /// Build a schema of nullable `Any`-typed columns from names (handy in tests).
    pub fn of_names(names: &[&str]) -> Self {
        Schema { attrs: names.iter().map(|n| Attribute::new(*n, ValueType::Any)).collect() }
    }

    /// An empty (0-ary) schema.
    pub fn empty() -> Self {
        Schema { attrs: Vec::new() }
    }

    /// Wrap the schema in an `Arc` for cheap sharing.
    pub fn shared(self) -> Arc<Schema> {
        Arc::new(self)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The attributes in order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The attribute at a position.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// The column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.attrs.iter().map(|a| a.name.as_str()).collect()
    }

    /// Resolve a (possibly unqualified) column name to its position.
    ///
    /// Resolution first looks for an exact match on the full name; failing
    /// that it matches against the unqualified base names. An ambiguous
    /// unqualified reference is an error, as in SQL.
    pub fn position_of(&self, name: &str) -> Result<usize> {
        crate::profile::record_name_resolution();
        // Exact match.
        let exact: Vec<usize> =
            self.attrs.iter().enumerate().filter(|(_, a)| a.name == name).map(|(i, _)| i).collect();
        match exact.len() {
            1 => return Ok(exact[0]),
            n if n > 1 => {
                return Err(DataError::AmbiguousAttribute {
                    name: name.to_string(),
                    matches: exact.iter().map(|&i| self.attrs[i].name.clone()).collect(),
                })
            }
            _ => {}
        }
        // Unqualified match on base names.
        let base = match name.rfind('.') {
            Some(i) => &name[i + 1..],
            None => name,
        };
        let by_base: Vec<usize> = self
            .attrs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.base_name() == base)
            .map(|(i, _)| i)
            .collect();
        match by_base.len() {
            1 => Ok(by_base[0]),
            0 => Err(DataError::UnknownAttribute {
                name: name.to_string(),
                available: self.attrs.iter().map(|a| a.name.clone()).collect(),
            }),
            _ => Err(DataError::AmbiguousAttribute {
                name: name.to_string(),
                matches: by_base.iter().map(|&i| self.attrs[i].name.clone()).collect(),
            }),
        }
    }

    /// Whether a column with this name can be resolved.
    pub fn contains(&self, name: &str) -> bool {
        self.position_of(name).is_ok()
    }

    /// Resolve a list of column names to positions.
    pub fn positions_of(&self, names: &[String]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.position_of(n)).collect()
    }

    /// Concatenate two schemas (Cartesian product / join output schema).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut attrs = self.attrs.clone();
        attrs.extend(other.attrs.iter().cloned());
        Schema { attrs }
    }

    /// Project the schema onto the given positions.
    pub fn project(&self, positions: &[usize]) -> Schema {
        Schema { attrs: positions.iter().map(|&i| self.attrs[i].clone()).collect() }
    }

    /// Rename every column by prefixing it with a qualifier (table alias).
    pub fn qualify(&self, qualifier: &str) -> Schema {
        Schema { attrs: self.attrs.iter().map(|a| a.qualified(qualifier)).collect() }
    }

    /// Rename the columns to the given names (must match arity).
    pub fn rename(&self, names: &[String]) -> Result<Schema> {
        if names.len() != self.arity() {
            return Err(DataError::ArityMismatch { expected: self.arity(), found: names.len() });
        }
        Ok(Schema {
            attrs: self
                .attrs
                .iter()
                .zip(names)
                .map(|(a, n)| Attribute { name: n.clone(), ty: a.ty, nullable: a.nullable })
                .collect(),
        })
    }

    /// Whether two schemas are *union compatible*: same arity and pairwise
    /// compatible column types (names may differ, as in SQL set operations).
    pub fn union_compatible(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .attrs
                .iter()
                .zip(other.attrs.iter())
                .all(|(a, b)| a.ty.accepts(b.ty) || b.ty.accepts(a.ty))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}{}", a.name, a.ty, if a.nullable { "" } else { " NOT NULL" })?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Attribute::not_null("o.o_orderkey", ValueType::Int),
            Attribute::new("o.o_custkey", ValueType::Int),
            Attribute::new("o.o_orderstatus", ValueType::Str),
        ])
    }

    #[test]
    fn exact_and_base_resolution() {
        let s = sample();
        assert_eq!(s.position_of("o.o_custkey").unwrap(), 1);
        assert_eq!(s.position_of("o_custkey").unwrap(), 1);
        assert!(s.position_of("missing").is_err());
    }

    #[test]
    fn ambiguous_resolution_is_error() {
        let s = Schema::new(vec![
            Attribute::new("a.x", ValueType::Int),
            Attribute::new("b.x", ValueType::Int),
        ]);
        assert!(matches!(s.position_of("x"), Err(DataError::AmbiguousAttribute { .. })));
        assert_eq!(s.position_of("b.x").unwrap(), 1);
    }

    #[test]
    fn concat_project_qualify() {
        let s = sample();
        let t = Schema::of_names(&["y"]);
        let c = s.concat(&t);
        assert_eq!(c.arity(), 4);
        let p = c.project(&[3, 0]);
        assert_eq!(p.names(), vec!["y", "o.o_orderkey"]);
        let q = Schema::of_names(&["a", "b"]).qualify("t1");
        assert_eq!(q.names(), vec!["t1.a", "t1.b"]);
    }

    #[test]
    fn rename_checks_arity() {
        let s = Schema::of_names(&["a", "b"]);
        assert!(s.rename(&["x".into()]).is_err());
        let r = s.rename(&["x".into(), "y".into()]).unwrap();
        assert_eq!(r.names(), vec!["x", "y"]);
        // types/nullability preserved
        assert_eq!(r.attr(0).ty, ValueType::Any);
    }

    #[test]
    fn union_compatibility() {
        let a = Schema::new(vec![Attribute::new("x", ValueType::Int)]);
        let b = Schema::new(vec![Attribute::new("y", ValueType::Decimal)]);
        let c = Schema::new(vec![Attribute::new("z", ValueType::Str)]);
        assert!(a.union_compatible(&b));
        assert!(!a.union_compatible(&c));
        assert!(!a.union_compatible(&a.concat(&b)));
    }

    #[test]
    fn display_contains_types() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("o.o_orderkey: INT NOT NULL"));
        assert!(d.contains("o.o_orderstatus: VARCHAR"));
    }
}
