//! Process-wide profiling counters for the hot-path work the compiled
//! operator runtime is supposed to eliminate.
//!
//! Three kinds of per-execution overhead used to hide in the engine's
//! delegating execution path: column-*name resolution* (string lookups in
//! [`crate::Schema::position_of`]), *schema inference* (re-deriving operator
//! output schemas per execution), and *plan materialisation* (wrapping an
//! already materialised relation back into a logical `Values` expression so
//! the reference evaluator can re-execute it).
//!
//! The counters themselves now live in the process-wide
//! [`certus_obs::metrics::MetricsRegistry`] under the `data.*` names — this
//! module is a thin shim that keeps the original record functions and the
//! [`ProfileSnapshot`]/[`ProfileSnapshot::delta_since`] API stable for
//! existing tests, while anything registry-aware (benches, the session
//! facade, future servers) reads the same counters through
//! [`certus_obs::MetricsSnapshot`].
//!
//! The counters are global and monotone — meaningful as *deltas* taken while
//! no other engine work runs in the process.

use certus_obs::metrics::{registry, Counter};
use certus_obs::names;
use std::sync::{Arc, OnceLock};

fn name_resolutions() -> &'static Counter {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| registry().counter(names::DATA_NAME_RESOLUTIONS))
}

fn schema_inferences() -> &'static Counter {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| registry().counter(names::DATA_SCHEMA_INFERENCES))
}

fn plan_materializations() -> &'static Counter {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| registry().counter(names::DATA_PLAN_MATERIALIZATIONS))
}

/// A snapshot of all profiling counters, for delta assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Column-name → position resolutions performed so far.
    pub name_resolutions: u64,
    /// Operator output-schema inferences performed so far.
    pub schema_inferences: u64,
    /// Materialised relations wrapped back into logical expressions so far.
    pub plan_materializations: u64,
}

impl ProfileSnapshot {
    /// Take a snapshot of the current counter values.
    pub fn now() -> ProfileSnapshot {
        ProfileSnapshot {
            name_resolutions: name_resolutions().value(),
            schema_inferences: schema_inferences().value(),
            plan_materializations: plan_materializations().value(),
        }
    }

    /// The counter increments since an earlier snapshot.
    pub fn delta_since(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        ProfileSnapshot {
            name_resolutions: self.name_resolutions - earlier.name_resolutions,
            schema_inferences: self.schema_inferences - earlier.schema_inferences,
            plan_materializations: self.plan_materializations - earlier.plan_materializations,
        }
    }

    /// Whether no counted work happened between `earlier` and this snapshot.
    pub fn is_zero(&self) -> bool {
        self.name_resolutions == 0 && self.schema_inferences == 0 && self.plan_materializations == 0
    }
}

/// Record one column-name resolution (called by [`crate::Schema::position_of`]).
#[inline]
pub fn record_name_resolution() {
    name_resolutions().incr();
}

/// Record one operator output-schema inference (called by the algebra crate's
/// `output_schema`).
#[inline]
pub fn record_schema_inference() {
    schema_inferences().incr();
}

/// Record one materialised-relation → logical-expression wrap (called by the
/// engine's delegating execution path).
#[inline]
pub fn record_plan_materialization() {
    plan_materializations().incr();
}

#[cfg(test)]
mod tests {
    use super::*;
    use certus_obs::MetricsSnapshot;

    #[test]
    fn deltas_track_recorded_events() {
        let before = ProfileSnapshot::now();
        record_name_resolution();
        record_schema_inference();
        record_plan_materialization();
        let delta = ProfileSnapshot::now().delta_since(&before);
        // Other tests in this process may also record events concurrently,
        // so only lower bounds are stable here.
        assert!(delta.name_resolutions >= 1);
        assert!(delta.schema_inferences >= 1);
        assert!(delta.plan_materializations >= 1);
        assert!(!delta.is_zero());
    }

    #[test]
    fn shim_and_registry_read_the_same_counters() {
        let before = MetricsSnapshot::now();
        record_name_resolution();
        let delta = MetricsSnapshot::now().delta_since(&before);
        assert!(delta.counter(names::DATA_NAME_RESOLUTIONS) >= 1);
        assert_eq!(
            ProfileSnapshot::now().name_resolutions,
            MetricsSnapshot::now().counter(names::DATA_NAME_RESOLUTIONS)
        );
    }
}
