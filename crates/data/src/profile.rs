//! Process-wide profiling counters for the hot-path work the compiled
//! operator runtime is supposed to eliminate.
//!
//! Three kinds of per-execution overhead used to hide in the engine's
//! delegating execution path: column-*name resolution* (string lookups in
//! [`crate::Schema::position_of`]), *schema inference* (re-deriving operator
//! output schemas per execution), and *plan materialisation* (wrapping an
//! already materialised relation back into a logical `Values` expression so
//! the reference evaluator can re-execute it). Each site increments a relaxed
//! atomic counter; tests snapshot the counters around a prepared re-execution
//! and assert the deltas are zero.
//!
//! The counters are global and monotone — meaningful as *deltas* taken while
//! no other engine work runs in the process.

use std::sync::atomic::{AtomicU64, Ordering};

static NAME_RESOLUTIONS: AtomicU64 = AtomicU64::new(0);
static SCHEMA_INFERENCES: AtomicU64 = AtomicU64::new(0);
static PLAN_MATERIALIZATIONS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of all profiling counters, for delta assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Column-name → position resolutions performed so far.
    pub name_resolutions: u64,
    /// Operator output-schema inferences performed so far.
    pub schema_inferences: u64,
    /// Materialised relations wrapped back into logical expressions so far.
    pub plan_materializations: u64,
}

impl ProfileSnapshot {
    /// Take a snapshot of the current counter values.
    pub fn now() -> ProfileSnapshot {
        ProfileSnapshot {
            name_resolutions: NAME_RESOLUTIONS.load(Ordering::Relaxed),
            schema_inferences: SCHEMA_INFERENCES.load(Ordering::Relaxed),
            plan_materializations: PLAN_MATERIALIZATIONS.load(Ordering::Relaxed),
        }
    }

    /// The counter increments since an earlier snapshot.
    pub fn delta_since(&self, earlier: &ProfileSnapshot) -> ProfileSnapshot {
        ProfileSnapshot {
            name_resolutions: self.name_resolutions - earlier.name_resolutions,
            schema_inferences: self.schema_inferences - earlier.schema_inferences,
            plan_materializations: self.plan_materializations - earlier.plan_materializations,
        }
    }

    /// Whether no counted work happened between `earlier` and this snapshot.
    pub fn is_zero(&self) -> bool {
        self.name_resolutions == 0 && self.schema_inferences == 0 && self.plan_materializations == 0
    }
}

/// Record one column-name resolution (called by [`crate::Schema::position_of`]).
#[inline]
pub fn record_name_resolution() {
    NAME_RESOLUTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Record one operator output-schema inference (called by the algebra crate's
/// `output_schema`).
#[inline]
pub fn record_schema_inference() {
    SCHEMA_INFERENCES.fetch_add(1, Ordering::Relaxed);
}

/// Record one materialised-relation → logical-expression wrap (called by the
/// engine's delegating execution path).
#[inline]
pub fn record_plan_materialization() {
    PLAN_MATERIALIZATIONS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_track_recorded_events() {
        let before = ProfileSnapshot::now();
        record_name_resolution();
        record_schema_inference();
        record_plan_materialization();
        let delta = ProfileSnapshot::now().delta_since(&before);
        // Other tests in this process may also record events concurrently,
        // so only lower bounds are stable here.
        assert!(delta.name_resolutions >= 1);
        assert!(delta.schema_inferences >= 1);
        assert!(delta.plan_materializations >= 1);
        assert!(!delta.is_zero());
    }
}
