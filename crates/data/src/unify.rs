//! Unifiability of values and tuples (Definition 2 of the paper).
//!
//! Two tuples `r̄` and `s̄` of the same length are *unifiable*, written
//! `r̄ ⇑ s̄`, if there exists a valuation `v` of nulls with `v(r̄) = v(s̄)`.
//!
//! For Codd nulls (no repeated null ids) this is a position-wise check: two
//! values unify unless both are constants and differ. With *marked* nulls a
//! repeated null may be forced to take two different constants, so a
//! consistency check is needed; [`Unifier`] implements it with a union-find
//! over null ids carrying an optional constant binding per class.

use crate::null::NullId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Position-wise unifiability of two values: true unless both are constants
/// that differ. This is the exact notion for Codd nulls and a necessary
/// condition for marked nulls.
pub fn values_unify(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null(_), _) | (_, Value::Null(_)) => true,
        _ => crate::compare::sql_eq(a, b).is_true(),
    }
}

/// Incremental unifier for marked nulls.
///
/// Constraints of the form "value `a` must equal value `b`" are added with
/// [`Unifier::require_equal`]; the unifier tracks, per equivalence class of
/// nulls, the unique constant the class is bound to (if any), and reports
/// failure as soon as two distinct constants would be identified.
#[derive(Debug, Default, Clone)]
pub struct Unifier {
    parent: HashMap<NullId, NullId>,
    binding: HashMap<NullId, Value>,
    failed: bool,
}

impl Unifier {
    /// Create an empty unifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a contradiction has been detected.
    pub fn failed(&self) -> bool {
        self.failed
    }

    /// Whether all constraints added so far are simultaneously satisfiable.
    pub fn consistent(&self) -> bool {
        !self.failed
    }

    fn find(&mut self, id: NullId) -> NullId {
        let mut root = id;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression.
        let mut cur = id;
        while let Some(&p) = self.parent.get(&cur) {
            if p == root {
                break;
            }
            self.parent.insert(cur, root);
            cur = p;
        }
        root
    }

    fn ensure(&mut self, id: NullId) -> NullId {
        self.parent.entry(id).or_insert(id);
        self.find(id)
    }

    fn bind(&mut self, id: NullId, c: &Value) {
        let root = self.ensure(id);
        match self.binding.get(&root) {
            Some(existing) => {
                if !crate::compare::sql_eq(existing, c).is_true() {
                    self.failed = true;
                }
            }
            None => {
                self.binding.insert(root, c.clone());
            }
        }
    }

    fn union(&mut self, a: NullId, b: NullId) {
        let ra = self.ensure(a);
        let rb = self.ensure(b);
        if ra == rb {
            return;
        }
        let bind_a = self.binding.get(&ra).cloned();
        let bind_b = self.binding.get(&rb).cloned();
        self.parent.insert(rb, ra);
        match (bind_a, bind_b) {
            (Some(x), Some(y)) if !crate::compare::sql_eq(&x, &y).is_true() => {
                self.failed = true;
            }
            (None, Some(y)) => {
                self.binding.insert(ra, y);
            }
            _ => {}
        }
    }

    /// Add the constraint that `a` and `b` denote the same value. Returns the
    /// current consistency status.
    pub fn require_equal(&mut self, a: &Value, b: &Value) -> bool {
        if self.failed {
            return false;
        }
        match (a, b) {
            (Value::Null(x), Value::Null(y)) => self.union(*x, *y),
            (Value::Null(x), c) => self.bind(*x, c),
            (c, Value::Null(y)) => self.bind(*y, c),
            (x, y) => {
                if !crate::compare::sql_eq(x, y).is_true() {
                    self.failed = true;
                }
            }
        }
        !self.failed
    }

    /// The constant a null is currently bound to, if any.
    pub fn binding_of(&mut self, id: NullId) -> Option<Value> {
        let root = self.ensure(id);
        self.binding.get(&root).cloned()
    }
}

/// Full tuple unifiability `r̄ ⇑ s̄` under marked-null semantics: there exists
/// a valuation making the tuples equal. Tuples of different lengths never
/// unify.
pub fn tuples_unify(r: &Tuple, s: &Tuple) -> bool {
    if r.len() != s.len() {
        return false;
    }
    let mut u = Unifier::new();
    for (a, b) in r.values().iter().zip(s.values()) {
        if !u.require_equal(a, b) {
            return false;
        }
    }
    true
}

/// Codd-null tuple unifiability: position-wise check only. Sound and complete
/// when no null id repeats across the two tuples.
pub fn tuples_unify_codd(r: &Tuple, s: &Tuple) -> bool {
    r.len() == s.len() && r.values().iter().zip(s.values()).all(|(a, b)| values_unify(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::null::NullId;

    fn n(i: u64) -> Value {
        Value::Null(NullId(i))
    }

    fn t(vals: Vec<Value>) -> Tuple {
        Tuple::new(vals)
    }

    #[test]
    fn constants_unify_iff_equal() {
        assert!(values_unify(&Value::Int(1), &Value::Int(1)));
        assert!(!values_unify(&Value::Int(1), &Value::Int(2)));
        assert!(values_unify(&n(1), &Value::Int(2)));
        assert!(values_unify(&n(1), &n(2)));
    }

    #[test]
    fn codd_tuples_unify_positionwise() {
        let a = t(vec![Value::Int(1), n(1)]);
        let b = t(vec![n(2), Value::Int(3)]);
        assert!(tuples_unify_codd(&a, &b));
        assert!(tuples_unify(&a, &b));
        let c = t(vec![Value::Int(2), n(3)]);
        assert!(!tuples_unify_codd(&a, &c));
        assert!(!tuples_unify(&a, &c));
    }

    #[test]
    fn marked_null_repetition_blocks_unification() {
        // r = (⊥1, ⊥1), s = (1, 2): position-wise OK but no single valuation works.
        let r = t(vec![n(1), n(1)]);
        let s = t(vec![Value::Int(1), Value::Int(2)]);
        assert!(tuples_unify_codd(&r, &s));
        assert!(!tuples_unify(&r, &s));
        // With equal constants it unifies.
        let s2 = t(vec![Value::Int(5), Value::Int(5)]);
        assert!(tuples_unify(&r, &s2));
    }

    #[test]
    fn transitive_binding_conflict() {
        // r = (⊥1, ⊥2, ⊥1), s = (1, ⊥1... ) chain forcing ⊥1=1 and ⊥1=2 must fail.
        let r = t(vec![n(1), n(1)]);
        let s = t(vec![Value::Int(1), n(2)]);
        // ⊥1=1 and ⊥1=⊥2: consistent (⊥2 := 1).
        assert!(tuples_unify(&r, &s));

        let r2 = t(vec![n(1), n(2), n(2)]);
        let s2 = t(vec![Value::Int(1), n(1), Value::Int(2)]);
        // ⊥1=1, ⊥2=⊥1 (so ⊥2=1), ⊥2=2 → contradiction.
        assert!(!tuples_unify(&r2, &s2));
    }

    #[test]
    fn different_arity_never_unifies() {
        let a = t(vec![Value::Int(1)]);
        let b = t(vec![Value::Int(1), Value::Int(2)]);
        assert!(!tuples_unify(&a, &b));
        assert!(!tuples_unify_codd(&a, &b));
    }

    #[test]
    fn unifier_is_symmetric_on_arguments() {
        let pairs = vec![(n(1), Value::Int(3)), (Value::Int(3), n(1)), (n(1), n(2))];
        for (a, b) in pairs {
            let mut u1 = Unifier::new();
            let mut u2 = Unifier::new();
            assert_eq!(u1.require_equal(&a, &b), u2.require_equal(&b, &a));
        }
    }

    #[test]
    fn binding_lookup() {
        let mut u = Unifier::new();
        u.require_equal(&n(1), &Value::Int(9));
        u.require_equal(&n(2), &n(1));
        assert_eq!(u.binding_of(NullId(2)), Some(Value::Int(9)));
        assert_eq!(u.binding_of(NullId(3)), None);
    }

    #[test]
    fn numeric_cross_type_unification() {
        // Decimal 1.00 and Int 1 are semantically equal constants.
        assert!(values_unify(&Value::Decimal(100), &Value::Int(1)));
        let mut u = Unifier::new();
        assert!(u.require_equal(&Value::Decimal(100), &Value::Int(1)));
    }
}

#[cfg(test)]
mod randomized_tests {
    //! Property-style checks on deterministic random tuples (the vendored
    //! `rand` shim replaces the original proptest strategies).

    use super::*;
    use crate::null::NullId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_value(rng: &mut StdRng) -> Value {
        match rng.gen_range(0..3u32) {
            0 => Value::Null(NullId(rng.gen_range(0..5u64))),
            1 => Value::Int(rng.gen_range(0..5i64)),
            _ => {
                let len = rng.gen_range(1..=2usize);
                let s: String =
                    (0..len).map(|_| char::from(b'a' + rng.gen_range(0..3u8))).collect();
                Value::str(s)
            }
        }
    }

    fn random_tuple(rng: &mut StdRng, len: usize) -> Tuple {
        Tuple::new((0..len).map(|_| random_value(rng)).collect())
    }

    #[test]
    fn unification_is_symmetric() {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        for _ in 0..500 {
            let a = random_tuple(&mut rng, 4);
            let b = random_tuple(&mut rng, 4);
            assert_eq!(tuples_unify(&a, &b), tuples_unify(&b, &a), "{a} vs {b}");
            assert_eq!(tuples_unify_codd(&a, &b), tuples_unify_codd(&b, &a), "{a} vs {b}");
        }
    }

    #[test]
    fn unification_is_reflexive() {
        let mut rng = StdRng::seed_from_u64(0xB0B);
        for _ in 0..200 {
            let a = random_tuple(&mut rng, 4);
            assert!(tuples_unify(&a, &a), "{a}");
            assert!(tuples_unify_codd(&a, &a), "{a}");
        }
    }

    #[test]
    fn marked_unification_implies_codd() {
        // The marked-null notion is strictly stronger (it adds consistency).
        let mut rng = StdRng::seed_from_u64(0xC0DD);
        let mut implications = 0usize;
        for _ in 0..500 {
            let a = random_tuple(&mut rng, 4);
            let b = random_tuple(&mut rng, 4);
            if tuples_unify(&a, &b) {
                implications += 1;
                assert!(tuples_unify_codd(&a, &b), "{a} vs {b}");
            }
        }
        assert!(implications > 0, "the sample never exercised the implication");
    }

    #[test]
    fn ground_tuples_unify_iff_equal() {
        let mut rng = StdRng::seed_from_u64(0x6E0);
        for _ in 0..500 {
            let xs: Vec<i64> = (0..4).map(|_| rng.gen_range(0..5i64)).collect();
            let ys: Vec<i64> = (0..4).map(|_| rng.gen_range(0..5i64)).collect();
            let a = Tuple::new(xs.iter().copied().map(Value::Int).collect());
            let b = Tuple::new(ys.iter().copied().map(Value::Int).collect());
            assert_eq!(tuples_unify(&a, &b), xs == ys);
        }
    }
}
