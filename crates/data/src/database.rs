//! Incomplete databases: named relations, key constraints, active domains.

use crate::error::DataError;
use crate::null::NullId;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::valuation::Valuation;
use crate::value::Value;
use crate::Result;
use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Table metadata: the schema plus declared primary key (used by the
/// key-based simplification `R ⋉̸⇑ S → R − S` of Section 7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub schema: Arc<Schema>,
    /// Names of the primary-key columns (empty if no key is declared).
    pub primary_key: Vec<String>,
}

impl TableDef {
    /// Create a table definition without a primary key.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        TableDef { name: name.into(), schema: schema.shared(), primary_key: Vec::new() }
    }

    /// Declare the primary key columns.
    pub fn with_key(mut self, key: &[&str]) -> Self {
        self.primary_key = key.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Whether the table declares a (non-empty) primary key.
    pub fn has_key(&self) -> bool {
        !self.primary_key.is_empty()
    }
}

/// The set of constants and nulls occurring in a database.
#[derive(Debug, Clone, Default)]
pub struct ActiveDomain {
    /// Constants, deduplicated, in deterministic order.
    pub constants: Vec<Value>,
    /// Null ids, deduplicated, in deterministic order.
    pub nulls: Vec<NullId>,
}

impl ActiveDomain {
    /// All elements of the active domain (`Const(D) ∪ Null(D)`) as values.
    pub fn elements(&self) -> Vec<Value> {
        let mut out = self.constants.clone();
        out.extend(self.nulls.iter().map(|&id| Value::Null(id)));
        out
    }

    /// Size of the active domain.
    pub fn len(&self) -> usize {
        self.constants.len() + self.nulls.len()
    }

    /// Whether the active domain is empty.
    pub fn is_empty(&self) -> bool {
        self.constants.is_empty() && self.nulls.is_empty()
    }
}

/// An incomplete database instance: a collection of named relations with
/// optional key constraints.
///
/// Relations are stored behind `Arc`s, so cloning a database is cheap — the
/// clone shares every relation (and the string pool) with the original and
/// only copies the name→relation map. Mutation through
/// [`Database::relation_mut`] is **copy-on-write**: a relation still shared
/// with another database clone is copied once, at mutation time, and only
/// that relation. This is what the snapshot/epoch storage
/// ([`crate::snapshot::SnapshotStore`]) builds on: readers pin an immutable
/// snapshot while a writer clones the database, rewrites just the touched
/// relations, and publishes the result under a bumped schema epoch.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Relation>>,
    defs: BTreeMap<String, TableDef>,
    epoch: u64,
    /// The per-database string pool: loaders intern through it so repeated
    /// strings share one allocation, and the columnar layer resolves string
    /// column ids against it. Interior-mutable, so interning works through
    /// the shared references the engine holds during execution. Shared (not
    /// copied) by `Clone`: snapshots of one database must agree on interned
    /// ids, and interning is additive, so sharing is always sound.
    pool: Arc<crate::intern::StrPool>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The database's *schema epoch*: a monotonic counter bumped by every
    /// mutating accessor ([`Database::create_table`],
    /// [`Database::insert_relation`], [`Database::relation_mut`]). Plan
    /// caches and statistics catalogs key on it so anything derived from a
    /// past state of the database invalidates when the database changes.
    pub fn schema_epoch(&self) -> u64 {
        self.epoch
    }

    /// The database's string pool (see [`crate::intern::StrPool`]).
    pub fn str_pool(&self) -> &crate::intern::StrPool {
        &self.pool
    }

    /// Intern a string through the database's pool and return it as a
    /// [`Value`]; repeated calls with equal content share one allocation.
    pub fn intern_str(&self, s: &str) -> Value {
        Value::Str(self.pool.intern(s).1)
    }

    /// Register a table definition with an empty instance.
    pub fn create_table(&mut self, def: TableDef) -> Result<()> {
        if self.tables.contains_key(&def.name) {
            return Err(DataError::DuplicateTable(def.name.clone()));
        }
        self.tables.insert(def.name.clone(), Arc::new(Relation::empty(def.schema.clone())));
        self.defs.insert(def.name.clone(), def);
        self.epoch += 1;
        Ok(())
    }

    /// Add (or replace) a relation under a name, deriving a key-less
    /// definition from its schema if none was registered.
    pub fn insert_relation(&mut self, name: impl Into<String>, relation: Relation) {
        let name = name.into();
        self.defs.entry(name.clone()).or_insert_with(|| TableDef {
            name: name.clone(),
            schema: relation.schema().clone(),
            primary_key: Vec::new(),
        });
        self.tables.insert(name, Arc::new(relation));
        self.epoch += 1;
    }

    /// Install a table definition together with its instance, replacing any
    /// existing entry under that name. Bumps the schema epoch like every
    /// mutating accessor. Unlike [`Database::insert_relation`] this keeps
    /// the definition's primary key — it is the restore path checkpoint
    /// recovery ([`crate::wal`]) rebuilds databases through.
    pub fn install_table(&mut self, def: TableDef, relation: Relation) {
        self.tables.insert(def.name.clone(), Arc::new(relation));
        self.defs.insert(def.name.clone(), def);
        self.epoch += 1;
    }

    /// Overwrite the schema epoch. Only for the durability layer
    /// ([`crate::wal`]): recovery rebuilds a database table by table (each
    /// install bumps the epoch) and then restores the epoch recorded in the
    /// checkpoint so recovered state never *rewinds* the epoch clock that
    /// plan caches and prepared statements are keyed on.
    pub fn set_schema_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Look up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(name)
            .map(|r| r.as_ref())
            .ok_or_else(|| DataError::UnknownTable(name.to_string()))
    }

    /// Look up a relation by name, returning the shared handle. Snapshots of
    /// the same database lineage hand out the *same* `Arc` until a writer
    /// copy-on-writes the relation, so `Arc::ptr_eq` across snapshots tells
    /// whether a relation was actually rewritten.
    pub fn relation_shared(&self, name: &str) -> Result<Arc<Relation>> {
        self.tables.get(name).cloned().ok_or_else(|| DataError::UnknownTable(name.to_string()))
    }

    /// Mutable access to a relation by name. Conservatively bumps the schema
    /// epoch — the caller receives the power to change the relation, so
    /// anything cached against the previous epoch must be considered stale.
    /// Copy-on-write: if the relation is still shared with another database
    /// clone (e.g. a pinned snapshot), it is deep-copied first, so the
    /// sharers never observe the mutation.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        match self.tables.get_mut(name) {
            Some(rel) => {
                self.epoch += 1;
                Ok(Arc::make_mut(rel))
            }
            None => Err(DataError::UnknownTable(name.to_string())),
        }
    }

    /// Look up a table definition by name.
    pub fn table_def(&self, name: &str) -> Result<&TableDef> {
        self.defs.get(name).ok_or_else(|| DataError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, in deterministic order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// All table definitions.
    pub fn table_defs(&self) -> impl Iterator<Item = &TableDef> {
        self.defs.values()
    }

    /// Whether a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Total number of tuples across all tables.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|r| r.len()).sum()
    }

    /// Whether any table contains a null (i.e. the database is incomplete).
    pub fn has_nulls(&self) -> bool {
        self.tables.values().any(|r| r.has_nulls())
    }

    /// Whether the database is complete (null-free).
    pub fn is_complete(&self) -> bool {
        !self.has_nulls()
    }

    /// Compute the active domain `adom(D) = Const(D) ∪ Null(D)`.
    pub fn active_domain(&self) -> ActiveDomain {
        let mut constants: HashSet<Value> = HashSet::new();
        let mut nulls: HashSet<NullId> = HashSet::new();
        for rel in self.tables.values() {
            constants.extend(rel.constants());
            nulls.extend(rel.null_ids());
        }
        let mut constants: Vec<Value> = constants.into_iter().collect();
        constants.sort();
        let mut nulls: Vec<NullId> = nulls.into_iter().collect();
        nulls.sort();
        ActiveDomain { constants, nulls }
    }

    /// All null ids occurring anywhere in the database.
    pub fn null_ids(&self) -> Vec<NullId> {
        self.active_domain().nulls
    }

    /// Apply a valuation to every relation, producing (for a total valuation)
    /// one of the complete databases this instance represents.
    pub fn apply(&self, v: &Valuation) -> Database {
        let mut out = Database::new();
        for (name, def) in &self.defs {
            out.defs.insert(name.clone(), def.clone());
        }
        for (name, rel) in &self.tables {
            out.tables.insert(name.clone(), Arc::new(rel.apply(v)));
        }
        out
    }

    /// Validate that non-nullable columns contain no nulls and that declared
    /// primary keys are key-like on the constant part (no two tuples share
    /// the same ground key).
    pub fn validate(&self) -> Result<()> {
        for (name, rel) in &self.tables {
            let def = &self.defs[name];
            for t in rel.iter() {
                for (i, v) in t.values().iter().enumerate() {
                    if v.is_null() && !rel.schema().attr(i).nullable {
                        return Err(DataError::NullInNonNullable {
                            table: name.clone(),
                            column: rel.schema().attr(i).name.clone(),
                        });
                    }
                }
            }
            if def.has_key() {
                let positions = rel
                    .schema()
                    .positions_of(&def.primary_key)
                    .map_err(|e| DataError::Invalid(format!("bad key on {name}: {e}")))?;
                let mut seen = HashSet::new();
                for t in rel.iter() {
                    let key = t.project(&positions);
                    if key.is_ground() && !seen.insert(key) {
                        return Err(DataError::Invalid(format!(
                            "primary key violated in table {name}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, rel) in &self.tables {
            writeln!(f, "{name}: {} tuples", rel.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::rel;
    use crate::schema::Attribute;
    use crate::types::ValueType;

    fn db_with_r() -> Database {
        let mut db = Database::new();
        db.insert_relation(
            "r",
            rel(
                &["a", "b"],
                vec![
                    vec![Value::Int(1), Value::Null(NullId(1))],
                    vec![Value::Int(2), Value::Int(3)],
                ],
            ),
        );
        db
    }

    #[test]
    fn create_and_lookup() {
        let mut db = Database::new();
        let def = TableDef::new("t", Schema::of_names(&["x"])).with_key(&["x"]);
        db.create_table(def.clone()).unwrap();
        assert!(db.has_table("t"));
        assert!(db.create_table(def).is_err());
        assert!(db.relation("missing").is_err());
        assert_eq!(db.table_def("t").unwrap().primary_key, vec!["x"]);
    }

    #[test]
    fn active_domain_collects_constants_and_nulls() {
        let db = db_with_r();
        let adom = db.active_domain();
        assert_eq!(adom.nulls, vec![NullId(1)]);
        assert_eq!(adom.constants.len(), 3);
        assert_eq!(adom.len(), 4);
        assert!(db.has_nulls());
        assert!(!db.is_complete());
    }

    #[test]
    fn apply_valuation_completes_database() {
        let db = db_with_r();
        let mut v = Valuation::new();
        v.set(NullId(1), Value::Int(42));
        let complete = db.apply(&v);
        assert!(complete.is_complete());
        assert_eq!(complete.relation("r").unwrap().len(), 2);
    }

    #[test]
    fn validate_rejects_null_in_non_nullable() {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Attribute::not_null("k", ValueType::Int),
            Attribute::new("v", ValueType::Int),
        ]);
        let mut r = Relation::empty(schema.shared());
        r.insert_values(vec![Value::Null(NullId(9)), Value::Int(1)]).unwrap();
        db.insert_relation("t", r);
        assert!(matches!(db.validate(), Err(DataError::NullInNonNullable { .. })));
    }

    #[test]
    fn validate_rejects_duplicate_keys() {
        let mut db = Database::new();
        let def = TableDef::new("t", Schema::of_names(&["k", "v"])).with_key(&["k"]);
        db.create_table(def).unwrap();
        let r = db.relation_mut("t").unwrap();
        r.insert_values(vec![Value::Int(1), Value::Int(10)]).unwrap();
        r.insert_values(vec![Value::Int(1), Value::Int(20)]).unwrap();
        assert!(db.validate().is_err());
    }

    #[test]
    fn schema_epoch_tracks_mutations() {
        let mut db = Database::new();
        assert_eq!(db.schema_epoch(), 0);
        db.create_table(TableDef::new("t", Schema::of_names(&["x"]))).unwrap();
        assert_eq!(db.schema_epoch(), 1);
        db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
        assert_eq!(db.schema_epoch(), 2);
        // Failed mutations leave the epoch alone…
        assert!(db.create_table(TableDef::new("t", Schema::of_names(&["x"]))).is_err());
        assert!(db.relation_mut("missing").is_err());
        assert_eq!(db.schema_epoch(), 2);
        // …while handing out mutable access bumps it conservatively.
        db.relation_mut("r").unwrap().insert_values(vec![Value::Int(2)]).unwrap();
        assert_eq!(db.schema_epoch(), 3);
        // Read-only accessors never bump.
        let _ = db.relation("r").unwrap();
        let _ = db.active_domain();
        assert_eq!(db.schema_epoch(), 3);
    }

    #[test]
    fn intern_str_shares_allocations() {
        let db = Database::new();
        let a = db.intern_str("FURNITURE");
        let b = db.intern_str("FURNITURE");
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(std::sync::Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
        assert_eq!(db.str_pool().len(), 1);
        // Cloning the database keeps the pool (and its allocations).
        let copy = db.clone();
        assert!(copy.str_pool().lookup("FURNITURE").is_some());
    }

    #[test]
    fn clone_shares_relations_until_mutation() {
        let db = db_with_r();
        let mut copy = db.clone();
        // The clone shares the relation allocation…
        assert!(Arc::ptr_eq(
            &db.relation_shared("r").unwrap(),
            &copy.relation_shared("r").unwrap()
        ));
        // …until it is mutated, which copies just that relation.
        copy.relation_mut("r").unwrap().insert_values(vec![Value::Int(5), Value::Int(6)]).unwrap();
        assert!(!Arc::ptr_eq(
            &db.relation_shared("r").unwrap(),
            &copy.relation_shared("r").unwrap()
        ));
        assert_eq!(db.relation("r").unwrap().len(), 2);
        assert_eq!(copy.relation("r").unwrap().len(), 3);
    }

    #[test]
    fn total_tuples_counts_all_tables() {
        let mut db = db_with_r();
        db.insert_relation("s", rel(&["x"], vec![vec![Value::Int(9)]]));
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.table_names(), vec!["r", "s"]);
    }
}
