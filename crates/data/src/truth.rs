//! SQL's three-valued logic (3VL).
//!
//! Comparisons involving nulls evaluate to [`Truth::Unknown`]; the connectives
//! follow Kleene's strong logic exactly as described in Section 2 of the paper
//! (`¬u = u`, `u ∧ t = u`, `u ∧ f = f`, dually for `∨`). A `WHERE` clause
//! keeps a row only when its condition evaluates to [`Truth::True`].

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A three-valued truth value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Truth {
    /// Definitely false.
    False,
    /// Unknown (at least one operand was a null).
    Unknown,
    /// Definitely true.
    True,
}

impl Truth {
    /// Build a truth value from a Boolean.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// `true` iff the value is [`Truth::True`] — this is the test SQL applies
    /// to `WHERE` conditions ("unknown" rows are filtered out).
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    /// `true` iff the value is [`Truth::False`].
    pub fn is_false(self) -> bool {
        self == Truth::False
    }

    /// `true` iff the value is [`Truth::Unknown`].
    pub fn is_unknown(self) -> bool {
        self == Truth::Unknown
    }

    /// Three-valued conjunction.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Three-valued negation.
    pub fn negate(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Fold a conjunction over an iterator, short-circuiting on `False`.
    pub fn all(iter: impl IntoIterator<Item = Truth>) -> Truth {
        let mut acc = Truth::True;
        for t in iter {
            acc = acc.and(t);
            if acc == Truth::False {
                return Truth::False;
            }
        }
        acc
    }

    /// Fold a disjunction over an iterator, short-circuiting on `True`.
    pub fn any(iter: impl IntoIterator<Item = Truth>) -> Truth {
        let mut acc = Truth::False;
        for t in iter {
            acc = acc.or(t);
            if acc == Truth::True {
                return Truth::True;
            }
        }
        acc
    }
}

impl Not for Truth {
    type Output = Truth;
    fn not(self) -> Truth {
        self.negate()
    }
}

impl BitAnd for Truth {
    type Output = Truth;
    fn bitand(self, rhs: Truth) -> Truth {
        self.and(rhs)
    }
}

impl BitOr for Truth {
    type Output = Truth;
    fn bitor(self, rhs: Truth) -> Truth {
        self.or(rhs)
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Truth {
        Truth::from_bool(b)
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Truth::True => "true",
            Truth::False => "false",
            Truth::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::Truth::*;
    use super::*;

    const ALL: [Truth; 3] = [False, Unknown, True];

    #[test]
    fn kleene_and_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(Unknown.and(Unknown), Unknown);
        assert_eq!(Unknown.and(False), False);
        assert_eq!(False.and(False), False);
        assert_eq!(False.and(True), False);
    }

    #[test]
    fn kleene_or_table() {
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.or(Unknown), Unknown);
        assert_eq!(Unknown.or(True), True);
        assert_eq!(True.or(True), True);
    }

    #[test]
    fn negation_table() {
        assert_eq!(!True, False);
        assert_eq!(!False, True);
        assert_eq!(!Unknown, Unknown);
    }

    #[test]
    fn de_morgan_holds() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a.and(b)), (!a).or(!b));
                assert_eq!(!(a.or(b)), (!a).and(!b));
            }
        }
    }

    #[test]
    fn connectives_commute_and_associate() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for c in ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn all_and_any_fold() {
        assert_eq!(Truth::all([True, True, True]), True);
        assert_eq!(Truth::all([True, Unknown]), Unknown);
        assert_eq!(Truth::all([Unknown, False]), False);
        assert_eq!(Truth::any([False, Unknown]), Unknown);
        assert_eq!(Truth::any([False, True]), True);
        assert_eq!(Truth::all(std::iter::empty()), True);
        assert_eq!(Truth::any(std::iter::empty()), False);
    }

    #[test]
    fn operators_match_methods() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a & b, a.and(b));
                assert_eq!(a | b, a.or(b));
            }
        }
    }
}
