//! # certus-data
//!
//! The data substrate of the *certus* workspace: everything the PODS'16 paper
//! "Making SQL Queries Correct on Incomplete Databases" assumes about the data
//! model is implemented here.
//!
//! * [`Value`] — constants of several SQL types plus *marked nulls*
//!   ([`NullId`]). Codd nulls are the special case where every null id occurs
//!   at most once in a database.
//! * [`Truth`] — SQL's three-valued logic (3VL) with Kleene connectives.
//! * Comparison semantics: [`compare::sql_cmp`] (3VL, `NULL` comparisons are
//!   `Unknown`) and [`compare::naive_cmp`] (naive evaluation — nulls behave as
//!   ordinary values, `⊥ᵢ = ⊥ᵢ` is true).
//! * [`unify`] — unifiability of values and tuples (Definition 2 of the
//!   paper), correct for repeated (marked) nulls via a union-find.
//! * [`Valuation`] — maps from nulls to constants; applying a valuation to a
//!   database yields one of the complete databases it represents.
//! * [`Schema`], [`Tuple`], [`Relation`], [`Database`] — incomplete relational
//!   instances, active domains, key constraints.
//! * [`mod@column`] — columnar batches: typed column vectors with null bitmaps
//!   that preserve marked-null ids, plus three-valued [`TruthMask`]s for
//!   vectorized predicate evaluation.
//! * [`intern`] — the per-database string pool ([`StrPool`]): deduplicated
//!   storage and dense ids for cheap hashing/equality on string columns.
//! * [`inject`] — the null-injection procedure of Section 3 of the paper
//!   (per-attribute coin flip at a configurable *null rate*).
//! * [`mod@codec`] — the binary encoding of values, schemas, tuples and
//!   relations, shared by the server's wire protocol and the durable
//!   storage layer.
//! * [`wal`] — durable snapshot storage: a checksummed write-ahead log with
//!   full-snapshot checkpoints and crash recovery ([`wal::DurableStore`]).

pub mod builder;
pub mod codec;
pub mod column;
pub mod compare;
pub mod database;
pub mod error;
pub mod inject;
pub mod intern;
pub mod like;
pub mod null;
pub mod profile;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod truth;
pub mod tuple;
pub mod types;
pub mod unify;
pub mod valuation;
pub mod value;
pub mod wal;

pub use column::{Batch, Column, ColumnData, NullMask, TruthMask};
pub use database::{ActiveDomain, Database, TableDef};
pub use error::DataError;
pub use intern::{StrId, StrPool};
pub use null::{NullGen, NullId};
pub use relation::Relation;
pub use schema::{Attribute, Schema};
pub use truth::Truth;
pub use tuple::Tuple;
pub use types::ValueType;
pub use valuation::Valuation;
pub use value::Value;

/// Convenient result alias used across the data crate.
pub type Result<T> = std::result::Result<T, DataError>;
