//! The value domain: constants of several types plus marked nulls.

use crate::null::NullId;
use crate::types::ValueType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A database value: either a constant from one of the supported base types,
/// or a (marked) null `⊥ᵢ`.
///
/// `Value` implements `Eq`/`Hash`/`Ord` *syntactically* — two nulls are equal
/// iff they carry the same [`NullId`], and floats are compared by their bit
/// pattern with NaN normalised. Syntactic equality is what naive evaluation
/// and hash-based physical operators need; SQL's three-valued comparisons
/// live in [`crate::compare`].
///
/// Strings are stored as `Arc<str>` so cloning a value — which joins,
/// projections and set operations do per surviving row — is a pointer bump
/// regardless of string length.
#[derive(Debug, Clone)]
pub enum Value {
    /// A marked null.
    Null(NullId),
    /// 64-bit integer constant.
    Int(i64),
    /// 64-bit float constant.
    Float(f64),
    /// Fixed-point decimal constant, stored as hundredths (e.g. `12.34` is `1234`).
    Decimal(i64),
    /// String constant (shared, cheap to clone).
    Str(Arc<str>),
    /// Boolean constant.
    Bool(bool),
    /// Date constant, stored as days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// A fresh Codd null drawn from the global generator.
    pub fn fresh_null() -> Value {
        Value::Null(crate::null::NullGen::global().fresh())
    }

    /// Build a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Build a decimal value from a float (rounded to hundredths).
    pub fn decimal(v: f64) -> Value {
        Value::Decimal((v * 100.0).round() as i64)
    }

    /// Is this value a null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Is this value a constant (i.e. not a null)?
    pub fn is_const(&self) -> bool {
        !self.is_null()
    }

    /// The null id, if this value is a null.
    pub fn null_id(&self) -> Option<NullId> {
        match self {
            Value::Null(id) => Some(*id),
            _ => None,
        }
    }

    /// The type of this value; nulls have type [`ValueType::Any`].
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null(_) => ValueType::Any,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Decimal(_) => ValueType::Decimal,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
            Value::Date(_) => ValueType::Date,
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Decimal(d) => Some(*d as f64 / 100.0),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// Date view of the value (days since epoch), if it is a date.
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Normalised float bits used for hashing/equality (maps NaN to a single
    /// representation and `-0.0` to `0.0`).
    fn float_bits(f: f64) -> u64 {
        normalized_float_bits(f)
    }

    /// Rank of the variant used for the cross-type total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null(_) => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Decimal(_) => 3,
            Value::Float(_) => 4,
            Value::Date(_) => 5,
            Value::Str(_) => 6,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null(a), Value::Null(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => Self::float_bits(*a) == Self::float_bits(*b),
            (Value::Decimal(a), Value::Decimal(b)) => a == b,
            // Interned strings share one allocation, so the pointer check
            // settles most comparisons without walking the bytes.
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            // Cross numeric-type syntactic equality: Int(1) == Decimal(100) would be
            // surprising for hashing, so different variants are never syntactically equal.
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null(id) => id.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => Self::float_bits(*f).hash(state),
            Value::Decimal(d) => d.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Date(d) => d.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null(a), Value::Null(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => Self::float_bits(*a).cmp(&Self::float_bits(*b)),
            (Value::Decimal(a), Value::Decimal(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Date(a), Value::Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null(id) => write!(f, "{id}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Decimal(d) => write!(f, "{}.{:02}", d / 100, (d % 100).abs()),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Date(d) => {
                let (y, m, day) = crate::value::date_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The float-bit normalisation behind [`Value`]'s syntactic equality and
/// hashing: every NaN maps to one representation and `-0.0` to `0.0`.
/// Columnar float columns hash and compare through the same function so the
/// vectorized operators agree with the row operators bit for bit.
pub fn normalized_float_bits(f: f64) -> u64 {
    if f.is_nan() {
        u64::MAX
    } else if f == 0.0 {
        0u64
    } else {
        f.to_bits()
    }
}

/// Convert a (year, month, day) triple to days since 1970-01-01.
///
/// Valid for years 1970..=9999 (proleptic Gregorian). Used by the TPC-H
/// generator for `DATE` columns.
pub fn days_from_date(year: i32, month: u32, day: u32) -> i32 {
    // Algorithm from Howard Hinnant's `days_from_civil`.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((month + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Convert days since 1970-01-01 back to a (year, month, day) triple.
pub fn date_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

/// Build a [`Value::Date`] from a calendar date.
pub fn date(year: i32, month: u32, day: u32) -> Value {
    Value::Date(days_from_date(year, month, day))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nulls_equal_only_same_id() {
        assert_eq!(Value::Null(NullId(1)), Value::Null(NullId(1)));
        assert_ne!(Value::Null(NullId(1)), Value::Null(NullId(2)));
        assert_ne!(Value::Null(NullId(1)), Value::Int(1));
    }

    #[test]
    fn float_nan_is_self_equal() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn decimal_constructor_rounds() {
        assert_eq!(Value::decimal(12.345), Value::Decimal(1235));
        assert_eq!(Value::decimal(-1.005), Value::Decimal(-100));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Decimal(1234).to_string(), "12.34");
        assert_eq!(Value::str("abc").to_string(), "'abc'");
        assert_eq!(date(1996, 3, 13).to_string(), "1996-03-13");
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (1992, 2, 29), (1998, 12, 31), (2024, 6, 15)] {
            let days = days_from_date(y, m, d);
            assert_eq!(date_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_date(1970, 1, 1), 0);
        assert_eq!(days_from_date(1970, 1, 2), 1);
    }

    #[test]
    fn cross_type_order_is_total_and_consistent() {
        let vals = vec![
            Value::Null(NullId(3)),
            Value::Bool(true),
            Value::Int(7),
            Value::Decimal(700),
            Value::Float(7.0),
            Value::Date(100),
            Value::str("z"),
        ];
        let mut sorted = vals.clone();
        sorted.sort();
        // sorting is stable w.r.t. the type rank ordering declared above
        assert_eq!(sorted, vals);
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Decimal(150).as_f64(), Some(1.5));
        assert_eq!(Value::str("x").as_f64(), None);
    }

    #[test]
    fn string_clones_share_storage() {
        let a = Value::str("a long string the runtime should never re-copy");
        let b = a.clone();
        match (&a, &b) {
            (Value::Str(x), Value::Str(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
        assert_eq!(a, b);
    }

    #[test]
    fn value_type_reporting() {
        assert_eq!(Value::Int(1).value_type(), ValueType::Int);
        assert_eq!(Value::fresh_null().value_type(), ValueType::Any);
    }
}
