//! SQL `LIKE` pattern matching.
//!
//! Query Q4 of the paper uses `p_name LIKE '%'||$color||'%'`. The pattern
//! language supports `%` (any sequence, possibly empty) and `_` (exactly one
//! character). Matching a null operand yields [`Truth::Unknown`] under SQL
//! semantics; the naive variant treats a null as a non-matching value.

use crate::truth::Truth;
use crate::value::Value;

/// Two-valued `LIKE` match between a string and a pattern.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // dp[i][j] = does t[..i] match p[..j]
    let mut dp = vec![vec![false; p.len() + 1]; t.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        if p[j - 1] == '%' {
            dp[0][j] = dp[0][j - 1];
        }
    }
    for i in 1..=t.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i][j - 1] || dp[i - 1][j],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && t[i - 1] == c,
            };
        }
    }
    dp[t.len()][p.len()]
}

/// SQL three-valued `LIKE`: `Unknown` if the value is a null, `False` if it is
/// a non-string constant, otherwise the Boolean match.
pub fn sql_like(value: &Value, pattern: &str) -> Truth {
    match value {
        Value::Null(_) => Truth::Unknown,
        Value::Str(s) => Truth::from_bool(like_match(s, pattern)),
        _ => Truth::False,
    }
}

/// Naive two-valued `LIKE`: nulls simply do not match any pattern.
pub fn naive_like(value: &Value, pattern: &str) -> bool {
    match value {
        Value::Str(s) => like_match(s, pattern),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::null::NullId;

    #[test]
    fn exact_match() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
    }

    #[test]
    fn percent_wildcard() {
        assert!(like_match("abc", "%"));
        assert!(like_match("abc", "a%"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "%b%"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "%d%"));
        assert!(like_match("almond antique blue", "%antique%"));
    }

    #[test]
    fn underscore_wildcard() {
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(!like_match("ab", "a_c"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("abc", "____"));
    }

    #[test]
    fn mixed_wildcards() {
        assert!(like_match("database", "d%b_se"));
        assert!(like_match("forest chiffon navy", "%chiffon%"));
        assert!(!like_match("forest chiffon navy", "%purple%"));
    }

    #[test]
    fn sql_like_on_null_is_unknown() {
        assert_eq!(sql_like(&Value::Null(NullId(1)), "%x%"), Truth::Unknown);
        assert_eq!(sql_like(&Value::str("xyz"), "%y%"), Truth::True);
        assert_eq!(sql_like(&Value::Int(3), "%"), Truth::False);
    }

    #[test]
    fn naive_like_on_null_is_false() {
        assert!(!naive_like(&Value::Null(NullId(1)), "%"));
        assert!(naive_like(&Value::str("abc"), "a%"));
    }
}
