//! Marked nulls and null-id generation.
//!
//! The paper models missing information with elements of a countably infinite
//! set `Null`, written `⊥₁, ⊥₂, …`. *Codd nulls* are the special case where
//! each null occurs at most once in a database (this is how SQL's `NULL` is
//! usually modelled); *marked* (labelled) nulls may repeat. All translations
//! in `certus-core` are correct for both (paper, Section 2).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a (marked) null. Two occurrences of the same `NullId` denote
/// the *same* unknown value; distinct ids denote possibly different values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u64);

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

/// Generator of fresh null identifiers.
///
/// A single process-wide generator (see [`NullGen::global`]) is used by the
/// null-injection code so that injected nulls are Codd nulls: every injection
/// site receives a fresh identifier.
#[derive(Debug)]
pub struct NullGen {
    next: AtomicU64,
}

impl NullGen {
    /// Create a new generator starting at the given id.
    pub fn starting_at(start: u64) -> Self {
        NullGen { next: AtomicU64::new(start) }
    }

    /// Create a new generator starting at 1.
    pub fn new() -> Self {
        Self::starting_at(1)
    }

    /// Produce a fresh, never-before-returned null id.
    pub fn fresh(&self) -> NullId {
        NullId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Access the process-wide generator.
    pub fn global() -> &'static NullGen {
        static GLOBAL: NullGen = NullGen { next: AtomicU64::new(1_000_000) };
        &GLOBAL
    }
}

impl Default for NullGen {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_distinct() {
        let g = NullGen::new();
        let a = g.fresh();
        let b = g.fresh();
        let c = g.fresh();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn starting_at_respected() {
        let g = NullGen::starting_at(42);
        assert_eq!(g.fresh(), NullId(42));
        assert_eq!(g.fresh(), NullId(43));
    }

    #[test]
    fn global_generator_monotone() {
        let a = NullGen::global().fresh();
        let b = NullGen::global().fresh();
        assert!(b.0 > a.0);
    }

    #[test]
    fn display_uses_bottom_symbol() {
        assert_eq!(NullId(7).to_string(), "⊥7");
    }
}
