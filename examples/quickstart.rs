//! Quickstart: the introduction's example, through the `Session` facade.
//!
//! `R = {1}`, `S = {NULL}`. SQL evaluates `R − S` (written with `NOT EXISTS`)
//! to `{1}`, but that tuple is not a certain answer — if the null stands for
//! `1`, the difference is empty. The certainty-preserving rewriting returns
//! only correct answers.
//!
//! Run with `cargo run --example quickstart`.

use certus::algebra::builder::eq;
use certus::data::builder::rel;
use certus::data::null::NullId;
use certus::{Certainty, Database, RaExpr, Session, Value};

fn main() {
    let mut db = Database::new();
    db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
    db.insert_relation("s", rel(&["b"], vec![vec![Value::Null(NullId(1))]]));

    // SELECT r.a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE r.a = s.b)
    let query = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));

    // One session owns the database, the translation pipeline, the planner
    // and the engine; `Certainty` picks which evaluation runs.
    let session = Session::new(db);

    let sql_answers = session.execute(&query, Certainty::Plain).expect("query runs");
    println!("SQL evaluation returns      : {} tuple(s)", sql_answers.len());
    for t in sql_answers.relation().iter() {
        println!("  {t}   <-- false positive: not a certain answer");
    }

    // `prepare` runs translation + rewrite passes + physical planning once;
    // the prepared query can then be executed any number of times with zero
    // planning work.
    let prepared = session.prepare(&query, Certainty::CertainPlus).expect("query translates");
    let certain = session.execute_prepared(&prepared).expect("prepared query runs");
    println!(
        "\nCertain-answer evaluation   : {} tuple(s) (correct: the answer is uncertain)",
        certain.len()
    );
    assert!(certain.is_empty());

    // Asking for both evaluations returns the answer breakdown of the paper.
    let both = session.execute(&query, Certainty::Both).expect("query runs");
    let breakdown = both.breakdown.expect("Both carries a breakdown");
    println!(
        "\nBreakdown of the SQL answer : {} total = {} certain + {} false positive(s)",
        breakdown.total, breakdown.certain, breakdown.false_positives
    );

    let stats = session.cache_stats();
    println!(
        "Plan cache                  : {} hits / {} misses over {} entries",
        stats.hits, stats.misses, stats.entries
    );
}
