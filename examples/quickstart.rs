//! Quickstart: the introduction's example.
//!
//! `R = {1}`, `S = {NULL}`. SQL evaluates `R − S` (written with `NOT EXISTS`)
//! to `{1}`, but that tuple is not a certain answer — if the null stands for
//! `1`, the difference is empty. The certainty-preserving rewriting returns
//! only correct answers.
//!
//! Run with `cargo run --example quickstart`.

use certus::algebra::builder::eq;
use certus::data::builder::rel;
use certus::data::null::NullId;
use certus::{CertainRewriter, Database, Engine, RaExpr, Value};

fn main() {
    let mut db = Database::new();
    db.insert_relation("r", rel(&["a"], vec![vec![Value::Int(1)]]));
    db.insert_relation("s", rel(&["b"], vec![vec![Value::Null(NullId(1))]]));

    // SELECT r.a FROM r WHERE NOT EXISTS (SELECT * FROM s WHERE r.a = s.b)
    let query = RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"));

    let engine = Engine::new(&db);
    let sql_answers = engine.execute(&query).expect("query runs");
    println!("SQL evaluation returns      : {} tuple(s)", sql_answers.len());
    for t in sql_answers.iter() {
        println!("  {t}   <-- false positive: not a certain answer");
    }

    let rewriter = CertainRewriter::new();
    let rewritten = rewriter.rewrite_plus(&query, &db).expect("query is in the supported fragment");
    println!("\nRewritten query Q+          : {rewritten}");
    let certain = engine.execute(&rewritten).expect("rewritten query runs");
    println!(
        "Certain-answer evaluation   : {} tuple(s) (correct: the answer is uncertain)",
        certain.len()
    );
    assert!(certain.is_empty());
}
