//! Why the naive rewriting confuses the optimizer — and how the planner's
//! OR-splitting pipeline fixes it. Prints `EXPLAIN` trees (with
//! statistics-backed row/cost estimates and the chosen join algorithm per
//! node) for query Q4 and its translation through `Session::explain`, plus
//! the raw (pipeline-off) translation via the low-level planner API.
//!
//! Run with `cargo run --release --example explain_plans`.

use certus::core::rewriter::CertainRewriter;
use certus::plan::PhysicalPlanner;
use certus::tpch::{q4, Workload};
use certus::{Certainty, Session};

fn main() {
    let workload = Workload::new(0.001, 0.02, 99);
    let db = workload.incomplete_instance();
    let params = workload.params(&db, 0);
    let query = q4(&params);

    // The raw translation needs the low-level API: `Session` always runs the
    // rewrite-pass pipeline, which is exactly what this example ablates.
    let unsplit =
        CertainRewriter::unoptimized().rewrite_plus(&query, &db).expect("translation succeeds");

    // Explicitly serial, so the first three trees carry no exchange
    // operators whatever CERTUS_THREADS / the core count says — the contrast
    // with the 4-thread session below is the point of this example.
    let session = Session::builder(db).threads(1).build();

    println!("=== Original Q4 ===");
    println!("{}", session.explain(&query, Certainty::Plain).expect("plans"));

    println!("=== Direct translation Q4+ (OR .. IS NULL conditions block hash joins) ===");
    let stats = session.statistics();
    let planner = PhysicalPlanner::new(session.database(), &stats);
    println!("{}", planner.explain(&unsplit).expect("plans"));

    println!("=== Optimized translation Q4+ (the pass pipeline restores hash joins) ===");
    println!("{}", session.explain(&query, Certainty::CertainPlus).expect("plans"));

    // The same queries, explained by a 4-thread session: exchange operators
    // mark where hash-join builds are partitioned and union arms run
    // concurrently (only inputs clearing the planner's row threshold are
    // exchanged — Q4's lineitem build qualifies, tiny builds stay serial).
    let parallel = Session::builder(session.into_database()).threads(4).build();
    println!("=== Original Q4, planned for 4 worker threads ===");
    println!("{}", parallel.explain(&query, Certainty::Plain).expect("plans"));
    println!("=== Optimized translation Q4+, planned for 4 worker threads ===");
    println!("{}", parallel.explain(&query, Certainty::CertainPlus).expect("plans"));
}
