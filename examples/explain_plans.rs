//! Why the naive rewriting confuses the optimizer — and how OR-splitting
//! fixes it. Prints EXPLAIN-style plans with estimated costs for query Q4,
//! its direct translation, and the split translation (Section 7 discussion).
//!
//! Run with `cargo run --release --example explain_plans`.

use certus::core::rewriter::CertainRewriter;
use certus::engine::cost::explain;
use certus::tpch::{q4, Workload};

fn main() {
    let workload = Workload::new(0.001, 0.02, 99);
    let db = workload.incomplete_instance();
    let params = workload.params(&db, 0);
    let query = q4(&params);

    println!("=== Original Q4 ===");
    println!("{}", explain(&query, &db).expect("estimates"));

    let unsplit = CertainRewriter::unoptimized()
        .rewrite_plus(&query, &db)
        .expect("translation succeeds");
    println!("=== Direct translation Q4+ (OR .. IS NULL conditions block hash joins) ===");
    println!("{}", explain(&unsplit, &db).expect("estimates"));

    let split = CertainRewriter::new()
        .rewrite_plus(&query, &db)
        .expect("translation succeeds");
    println!("=== Optimized translation Q4+ (OR-splitting restores hash joins) ===");
    println!("{}", explain(&split, &db).expect("estimates"));
}
