//! Why the naive rewriting confuses the optimizer — and how the planner's
//! OR-splitting pipeline fixes it. Prints the cost-based physical planner's
//! `EXPLAIN` trees (with statistics-backed row/cost estimates and the chosen
//! join algorithm per node) for query Q4, its direct translation, and the
//! pipeline-rewritten translation (Section 7 discussion).
//!
//! Run with `cargo run --release --example explain_plans`.

use certus::core::rewriter::CertainRewriter;
use certus::plan::{Parallelism, PhysicalPlanner, StatisticsCatalog};
use certus::tpch::{q4, Workload};

fn main() {
    let workload = Workload::new(0.001, 0.02, 99);
    let db = workload.incomplete_instance();
    let params = workload.params(&db, 0);
    let query = q4(&params);

    let stats = StatisticsCatalog::analyze(&db);
    let planner = PhysicalPlanner::new(&db, &stats);

    println!("=== Original Q4 ===");
    println!("{}", planner.explain(&query).expect("plans"));

    let unsplit =
        CertainRewriter::unoptimized().rewrite_plus(&query, &db).expect("translation succeeds");
    println!("=== Direct translation Q4+ (OR .. IS NULL conditions block hash joins) ===");
    println!("{}", planner.explain(&unsplit).expect("plans"));

    let split = CertainRewriter::new().rewrite_plus(&query, &db).expect("translation succeeds");
    println!("=== Optimized translation Q4+ (the pass pipeline restores hash joins) ===");
    println!("{}", planner.explain(&split).expect("plans"));

    // The same queries, prepared for a 4-thread engine: exchange operators
    // mark where hash-join builds are partitioned and union arms run
    // concurrently (only inputs clearing the planner's row threshold are
    // exchanged — Q4's lineitem build qualifies, tiny builds stay serial).
    let parallel = PhysicalPlanner::with_parallelism(&db, &stats, Parallelism::new(4));
    println!("=== Original Q4, planned for 4 worker threads ===");
    println!("{}", parallel.explain(&query).expect("plans"));
    println!("=== Optimized translation Q4+, planned for 4 worker threads ===");
    println!("{}", parallel.explain(&split).expect("plans"));
}
