//! The price of correctness: how much slower (or faster) are the rewritten
//! queries? A miniature Figure 4, followed by the planner-on/off ablation
//! (the Section 7 rescue of the translated `NOT EXISTS` queries).
//!
//! Run with `cargo run --release --example price_of_correctness`.

use certus::tpch::{query_by_number, Workload};
use certus::{CertainRewriter, Engine};
use certus_bench::experiments::{
    parallel_scaling, planner_on_off, prepared_execution, print_parallel_scaling,
    print_planner_on_off, print_prepared,
};
use std::time::Instant;

fn time_it(mut f: impl FnMut()) -> f64 {
    // One warm-up run, then the mean of three measured runs.
    f();
    let start = Instant::now();
    for _ in 0..3 {
        f();
    }
    start.elapsed().as_secs_f64() / 3.0
}

fn main() {
    let workload = Workload::new(0.001, 0.02, 7);
    let db = workload.incomplete_instance();
    let engine = Engine::new(&db);
    let rewriter = CertainRewriter::new();
    let params = workload.params(&db, 0);

    println!("TPC-H micro-instance: {} tuples, 2% null rate\n", db.total_tuples());
    println!("{:>5} {:>12} {:>12} {:>10} {:>10}", "query", "t(Q) s", "t(Q+) s", "ratio", "answers");
    for q in 1..=4 {
        let expr = query_by_number(q, &params).expect("query exists");
        let plus = rewriter.rewrite_plus(&expr, &db).expect("translation succeeds");
        let t_orig = time_it(|| {
            engine.execute(&expr).expect("runs");
        });
        let t_plus = time_it(|| {
            engine.execute(&plus).expect("runs");
        });
        let answers = engine.execute(&plus).expect("runs").len();
        println!(
            "{:>5} {:>12.5} {:>12.5} {:>10.3} {:>10}",
            format!("Q{q}"),
            t_orig,
            t_plus,
            t_plus / t_orig.max(1e-9),
            answers
        );
    }
    println!("\nRatios near 1 mean correctness is almost free; Q2's ratio is far below 1");
    println!("because the rewriting detects early that the certain answer is empty.");

    println!();
    print_planner_on_off(&planner_on_off(0.001, 0.02, 7, 3));
    println!("\nThe 'off' column runs the raw translation (its OR .. IS NULL conditions");
    println!("force nested-loop anti-joins); 'on' runs it through certus-plan's");
    println!("rewrite-pass pipeline (null pruning + guarded OR-split restore hash");
    println!("anti-joins — the Section 7 rescue, clearest on Q3+).");

    println!();
    print_parallel_scaling(&parallel_scaling(0.001, 0.02, 7, 1, &[1, 2, 4, 8]));
    println!("\nEach row runs the optimized Q3+/Q4+ with the engine's exchange operators");
    println!("fanned out to that many worker threads (CERTUS_THREADS overrides the");
    println!("default); speedups are relative to the single-thread row and depend on");
    println!("the machine's core count.");

    println!();
    let (rows, cache) = prepared_execution(0.001, 0.02, 7, 3);
    print_prepared(&rows, &cache);
    println!("\nThe per-call arm re-runs translation + rewrite passes + planning on every");
    println!("execution; the prepared arm plans once via Session::prepare and then only");
    println!("executes — the overhead column is the planning share a plan cache saves");
    println!("on repeated workload queries.");
}
