//! How many wrong answers does SQL return on TPC-H with nulls?
//!
//! Generates a small TPC-H instance, injects nulls at increasing rates, runs
//! the paper's queries Q1–Q4 and reports the share of answers that the
//! Section 4 detectors prove to be false positives — a miniature Figure 1.
//!
//! Run with `cargo run --release --example tpch_false_positives`.

use certus::tpch::fp_detect::count_false_positives;
use certus::tpch::{query_by_number, Workload};
use certus::Engine;

fn main() {
    println!("{:>9} {:>8} {:>8} {:>8} {:>8}", "null rate", "Q1", "Q2", "Q3", "Q4");
    for rate in [0.01, 0.02, 0.05, 0.10] {
        let workload = Workload::new(0.0005, rate, 42);
        let db = workload.incomplete_instance();
        let engine = Engine::new(&db);
        let params = workload.params(&db, 0);
        let mut cells = Vec::new();
        for q in 1..=4 {
            let expr = query_by_number(q, &params).expect("query exists");
            let answers = engine.execute(&expr).expect("query runs");
            if answers.is_empty() {
                cells.push("  (none)".to_string());
                continue;
            }
            let fp = count_false_positives(q, &db, &params, &answers);
            cells.push(format!("{:>7.1}%", 100.0 * fp as f64 / answers.len() as f64));
        }
        println!("{:>8.0}% {} {} {} {}", rate * 100.0, cells[0], cells[1], cells[2], cells[3]);
    }
    println!("\nEvery percentage above is a *lower bound* on the share of plain-wrong answers.");
}
