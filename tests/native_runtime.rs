//! Acceptance check for the compiled operator runtime: re-executing a
//! `PreparedQuery` must perform **zero** schema inference, **zero**
//! column-name resolution, and **zero** wrapping of materialised relations
//! back into logical expressions. The `certus-data` profiling counters
//! instrument exactly those three operations; this file contains a single
//! test (integration-test files run as their own process) so no concurrent
//! engine work can pollute the counter deltas.

use certus::data::profile::ProfileSnapshot;
use certus::tpch::{query_by_number, Workload};
use certus::{Certainty, EngineConfig, Session};

#[test]
fn prepared_re_execution_does_zero_per_execution_setup_work() {
    let workload = Workload::new(0.0004, 0.04, 31);
    let db = workload.incomplete_instance();
    let params = workload.params(&db, 0);
    let session = Session::builder(db).config(EngineConfig::serial()).build();

    // Q3 and Q4 cover filters, projections, hash joins, hash anti-joins and
    // split unions; neither contains a scalar subquery (scalar subqueries
    // are opaque to the planner and are deliberately evaluated through the
    // reference evaluator once per execution).
    for q in [3usize, 4] {
        let expr = query_by_number(q, &params).expect("query exists");
        let prepared = session.prepare(&expr, Certainty::CertainPlus).expect("prepares");
        let first = session.execute_prepared(&prepared).expect("runs");

        let before = ProfileSnapshot::now();
        for _ in 0..3 {
            let again = session.execute_prepared(&prepared).expect("runs");
            assert_eq!(
                again.relation().sorted().tuples(),
                first.relation().sorted().tuples(),
                "Q{q}+ re-execution changed results"
            );
        }
        let delta = ProfileSnapshot::now().delta_since(&before);
        assert!(
            delta.is_zero(),
            "re-executing prepared Q{q}+ did hidden per-execution work: {delta:?}"
        );
    }

    // The delegating path, by contrast, trips all three counters — the
    // instrumentation itself is alive.
    let engine = certus::Engine::with_config(session.database(), EngineConfig::serial());
    let expr = query_by_number(3, &params).expect("query exists");
    let plan = engine.plan(&expr).expect("plans");
    let before = ProfileSnapshot::now();
    engine.execute_physical_delegating(&plan).expect("runs");
    let delta = ProfileSnapshot::now().delta_since(&before);
    assert!(delta.plan_materializations > 0, "delegating path should wrap relations: {delta:?}");
    assert!(delta.name_resolutions > 0, "delegating path should resolve names: {delta:?}");
}
