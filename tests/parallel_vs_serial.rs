//! Differential correctness of the parallel execution engine.
//!
//! The parallel executor is held to the same bar as the rewrite passes: on
//! randomized null databases it must return **exactly** the serial engine's
//! result (as a set) for every pipeline-optimized plan, under both SQL and
//! naive null semantics, at every thread count. On top of that, execution
//! must be deterministic (two runs with the same configuration produce
//! identical relations, order included), and a single-thread configuration
//! must degenerate to the serial code path — asserted via `ExplainPlan`:
//! no exchange operators appear in its plans.

use certus::algebra::NullSemantics;
use certus::data::inject::NullInjector;
use certus::engine::{Engine, EngineConfig};
use certus::plan::{heuristic_plan, Parallelism, PhysicalPlanner, Planner, StatisticsCatalog};
use certus::tpch::{q1, q2, q3, q4, DbGen, QueryParams};
use certus::{CertainRewriter, Database, RaExpr};

fn workload_db(seed: u64) -> Database {
    let complete = DbGen::new(0.00025, seed).generate();
    NullInjector::new(0.05, seed.wrapping_mul(31).wrapping_add(7)).inject(&complete)
}

/// The paper's queries plus their pipeline-optimized certain-answer
/// translations — the workload every engine configuration must agree on.
fn pipeline_optimized_queries(db: &Database, seed: u64) -> Vec<RaExpr> {
    let params = QueryParams::random(db, seed);
    let raw_rewriter = CertainRewriter::unoptimized();
    let planner = Planner::new();
    let mut queries = vec![q1(&params), q2(&params), q3(&params), q4(&params)];
    for q in [q1(&params), q2(&params), q3(&params), q4(&params)] {
        let raw = raw_rewriter.rewrite_plus(&q, db).expect("translates");
        queries.push(planner.optimize(&raw, db).expect("pipeline runs"));
    }
    queries
}

#[test]
fn parallel_engine_matches_serial_on_randomized_null_databases() {
    for seed in [3u64, 11] {
        let db = workload_db(seed);
        let queries = pipeline_optimized_queries(&db, seed);
        for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
            let serial = Engine::configured(&db, semantics, EngineConfig::serial());
            for q in &queries {
                let expected = serial.execute(q).expect("serial runs").sorted().distinct();
                for threads in [2usize, 8, 32] {
                    // Floor 0: every exchange actually fans out, so the
                    // parallel code paths are exercised even on this small
                    // instance (the default floor would run most of them
                    // inline).
                    let parallel = Engine::configured(
                        &db,
                        semantics,
                        EngineConfig::with_threads(threads).with_parallel_floor(0),
                    );
                    let got = parallel.execute(q).expect("parallel runs").sorted().distinct();
                    assert_eq!(
                        got.tuples(),
                        expected.tuples(),
                        "seed {seed}, {threads} threads, {} semantics, query {q}",
                        semantics.label()
                    );
                }
            }
        }
    }
}

#[test]
fn cost_based_parallel_plans_match_serial_execution() {
    let db = workload_db(7);
    let params = QueryParams::random(&db, 7);
    let stats = StatisticsCatalog::analyze(&db);
    let serial_planner = PhysicalPlanner::new(&db, &stats);
    // Zero threshold: exchange every eligible site, maximising the parallel
    // paths exercised regardless of instance size.
    let mut par = Parallelism::new(4);
    par.row_threshold = 0.0;
    let parallel_planner = PhysicalPlanner::with_parallelism(&db, &stats, par);
    let serial_engine = Engine::with_config(&db, EngineConfig::serial());
    let parallel_engine =
        Engine::with_config(&db, EngineConfig::with_threads(4).with_parallel_floor(0));
    for q in [q1(&params), q3(&params), q4(&params)] {
        let sp = serial_planner.plan(&q).expect("plans");
        let pp = parallel_planner.plan(&q).expect("plans");
        assert!(!sp.has_exchange());
        assert!(pp.has_exchange(), "parallel planner should exchange {q}");
        let a = serial_engine.execute_physical(&sp).expect("runs").sorted().distinct();
        let b = parallel_engine.execute_physical(&pp).expect("runs").sorted().distinct();
        assert_eq!(a.tuples(), b.tuples(), "query {q}");
    }
}

/// Every native operator of the compiled runtime, executed through parallel
/// engine configurations on randomized null databases, must return the
/// serial result under both semantics (run by CI with `CERTUS_THREADS=1`
/// and `=4` on top of the explicit thread counts here).
#[test]
fn native_operators_match_serial_across_thread_counts() {
    use certus::algebra::builder::{eq, eq_const, is_null, neq};
    use certus::algebra::{AggExpr, AggFunc};
    use certus::data::builder::rel;
    use certus::data::null::NullId;
    use certus::data::Value;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0x9A7A);
    let value = |rng: &mut StdRng| {
        if rng.gen_bool(0.2) {
            Value::Null(NullId(rng.gen_range(1..6u64)))
        } else {
            Value::Int(rng.gen_range(0..6i64))
        }
    };
    for case in 0..12 {
        let mut db = Database::new();
        let rows = |rng: &mut StdRng| {
            let n = rng.gen_range(4..40usize);
            (0..n).map(|_| vec![value(rng), value(rng)]).collect::<Vec<_>>()
        };
        let r_rows = rows(&mut rng);
        let s_rows = rows(&mut rng);
        db.insert_relation("r", rel(&["a", "b"], r_rows));
        db.insert_relation("s", rel(&["c", "d"], s_rows));
        let queries = vec![
            RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d"))),
            RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d"))),
            RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "c")),
            RaExpr::relation("r")
                .select(eq_const("a", 2i64).or(is_null("b")))
                .project(&["b"])
                .union(RaExpr::relation("s").project(&["d"]).rename(&["b"])),
            RaExpr::relation("r").project(&["a"]).intersect(RaExpr::relation("s").project(&["c"])),
            RaExpr::relation("r").project(&["a"]).difference(RaExpr::relation("s").project(&["c"])),
            RaExpr::relation("r").unify_anti_join(RaExpr::relation("s")),
            RaExpr::relation("r")
                .divide(RaExpr::relation("s").project(&["c"]).rename(&["b"]).distinct()),
            // COUNT only: other aggregates emit fresh nulls on all-null
            // groups, which never compare equal across evaluations.
            RaExpr::relation("r").aggregate(
                &["a"],
                vec![AggExpr::count_star("n"), AggExpr::new(AggFunc::Count, "b", "m")],
            ),
        ];
        for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
            let serial = Engine::configured(&db, semantics, EngineConfig::serial());
            for q in &queries {
                let expected = serial.execute(q).expect("serial runs").sorted().distinct();
                for threads in [2usize, 4] {
                    let parallel = Engine::configured(
                        &db,
                        semantics,
                        EngineConfig::with_threads(threads).with_parallel_floor(0),
                    );
                    let got = parallel.execute(q).expect("parallel runs").sorted().distinct();
                    assert_eq!(
                        got.tuples(),
                        expected.tuples(),
                        "case {case}, {threads} threads, {} semantics, query {q}",
                        semantics.label()
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_execution_is_deterministic() {
    let db = workload_db(5);
    let params = QueryParams::random(&db, 5);
    let rewriter = CertainRewriter::new();
    for threads in [2usize, 8, 32] {
        let engine =
            Engine::with_config(&db, EngineConfig::with_threads(threads).with_parallel_floor(0));
        for q in [q3(&params), q4(&params)] {
            let plus = rewriter.rewrite_plus(&q, &db).expect("translates");
            let first = engine.execute(&plus).expect("runs");
            let second = engine.execute(&plus).expect("runs");
            // Identical relations, tuple order included — partition routing
            // is a fixed hash and partition outputs are concatenated in
            // order, regardless of how the pool schedules the tasks.
            assert_eq!(first.tuples(), second.tuples(), "{threads} threads, query {q}");
        }
    }
}

/// Concurrent sessions submitting to one shared worker pool: every client
/// still gets exactly the serial answers, and the pool never runs more
/// tasks at once than its width — the configured-thread bound the old
/// per-engine `in_flight` counter only approximated (racily).
#[test]
fn concurrent_sessions_share_one_pool() {
    use certus::exec::Pool;
    use certus::{Certainty, Session};
    use std::sync::Arc;

    let pool = Arc::new(Pool::new(4));
    let db = workload_db(13);
    let params = QueryParams::random(&db, 13);
    let queries: Vec<RaExpr> = vec![q1(&params), q3(&params), q4(&params)];
    let serial = Session::builder(db.clone()).config(EngineConfig::serial()).build();
    let expected: Vec<_> = queries
        .iter()
        .map(|q| {
            serial
                .execute(q, Certainty::CertainPlus)
                .expect("serial runs")
                .relation()
                .sorted()
                .distinct()
        })
        .collect();

    std::thread::scope(|s| {
        for client in 0..6usize {
            let pool = pool.clone();
            let db = db.clone();
            let queries = &queries;
            let expected = &expected;
            s.spawn(move || {
                let session = Session::builder(db)
                    .config(EngineConfig::with_threads(8).with_parallel_floor(0))
                    .worker_pool(pool)
                    .build();
                for round in 0..3 {
                    for (q, want) in queries.iter().zip(expected) {
                        let got = session
                            .execute(q, Certainty::CertainPlus)
                            .expect("parallel runs")
                            .relation()
                            .sorted()
                            .distinct();
                        assert_eq!(
                            got.tuples(),
                            want.tuples(),
                            "client {client}, round {round}, query {q}"
                        );
                    }
                }
            });
        }
    });
    assert!(pool.tasks_executed() > 0, "the shared pool never ran a task");
    assert!(
        pool.peak_busy_workers() <= pool.width(),
        "pool ran {} tasks at once with only {} workers",
        pool.peak_busy_workers(),
        pool.width()
    );
}

/// Stress the worker bound: a plan fan-out far wider than the pool (64
/// partitions, 8 workers) must neither deadlock nor run more than `width`
/// tasks simultaneously, and still return the serial answers.
#[test]
fn oversubscribed_fan_out_stays_within_pool_width() {
    use certus::exec::Pool;
    use certus::{Certainty, Session};
    use std::sync::Arc;

    let pool = Arc::new(Pool::new(8));
    let db = workload_db(17);
    let params = QueryParams::random(&db, 17);
    let serial = Session::builder(db.clone()).config(EngineConfig::serial()).build();
    let session = Session::builder(db)
        .config(EngineConfig::with_threads(64).with_parallel_floor(0))
        .worker_pool(pool.clone())
        .build();
    for q in [q3(&params), q4(&params)] {
        let want = serial.execute(&q, Certainty::CertainPlus).expect("serial runs");
        let got = session.execute(&q, Certainty::CertainPlus).expect("parallel runs");
        assert_eq!(
            got.relation().sorted().distinct().tuples(),
            want.relation().sorted().distinct().tuples(),
            "query {q}"
        );
    }
    assert!(
        pool.peak_busy_workers() <= pool.width(),
        "64-way fan-out ran {} tasks at once on an 8-wide pool",
        pool.peak_busy_workers()
    );
}

#[test]
fn single_thread_config_degenerates_to_serial_plans() {
    let db = workload_db(9);
    let params = QueryParams::random(&db, 9);
    let q = q3(&params);
    let stats = StatisticsCatalog::analyze(&db);

    // threads = 1: the explain tree shows no exchange operators.
    let serial = PhysicalPlanner::with_parallelism(&db, &stats, Parallelism::serial());
    let text = serial.explain(&q).expect("plans").to_string();
    assert!(!text.contains("Exchange"), "serial explain must not exchange:\n{text}");

    // threads = 4 (zero threshold): exchanges appear in the rendering.
    let mut par = Parallelism::new(4);
    par.row_threshold = 0.0;
    let parallel = PhysicalPlanner::with_parallelism(&db, &stats, par);
    let text = parallel.explain(&q).expect("plans").to_string();
    assert!(text.contains("Exchange hash("), "parallel explain should exchange:\n{text}");

    // The engine's own heuristic plan at one thread is *identical* to the
    // plain serial heuristic plan, and free of exchanges.
    let engine1 = Engine::with_config(&db, EngineConfig::with_threads(1));
    let plan1 = engine1.plan(&q).expect("plans");
    assert_eq!(plan1, heuristic_plan(&q, &db).expect("plans"));
    assert!(!plan1.has_exchange());
    let engine4 = Engine::with_config(&db, EngineConfig::with_threads(4));
    assert!(engine4.plan(&q).expect("plans").has_exchange());
}
