//! End-to-end pipeline tests: generate a TPC-H workload, inject nulls, run
//! the paper's queries and their certainty-preserving rewritings through the
//! engine, and check the paper's headline claims on the results.

use certus::tpch::fp_detect::count_false_positives;
use certus::tpch::{query_by_number, Workload};
use certus::{CertainRewriter, Engine};

#[test]
fn sql_produces_false_positives_and_rewriting_eliminates_them() {
    let workload = Workload::new(0.0004, 0.06, 21);
    let db = workload.incomplete_instance();
    let engine = Engine::new(&db);
    let rewriter = CertainRewriter::new();
    let params = workload.params(&db, 0);

    let mut any_fp = false;
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).expect("query exists");
        let sql = engine.execute(&expr).expect("query runs");
        let plus = rewriter.rewrite_plus(&expr, &db).expect("translation succeeds");
        let certain = engine.execute(&plus).expect("rewritten query runs");

        let sql_fp = count_false_positives(q, &db, &params, &sql);
        let plus_fp = count_false_positives(q, &db, &params, &certain);
        any_fp |= sql_fp > 0;
        assert_eq!(plus_fp, 0, "Q{q}+ returned a detected false positive");
    }
    assert!(any_fp, "at a 6% null rate at least one query should show false positives");
}

#[test]
fn rewriting_is_identity_behaviour_on_complete_databases() {
    // Third guarantee of the paper's summary: on databases without nulls the
    // original query and its rewriting produce the same results.
    let workload = Workload::new(0.0004, 0.0, 3);
    let db = workload.complete_instance();
    let engine = Engine::new(&db);
    let rewriter = CertainRewriter::new();
    let params = workload.params(&db, 1);
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).expect("query exists");
        let plus = rewriter.rewrite_plus(&expr, &db).expect("translation succeeds");
        let a = engine.execute(&expr).expect("runs").sorted();
        let b = engine.execute(&plus).expect("runs").sorted();
        assert_eq!(a.tuples(), b.tuples(), "Q{q} differs on a complete instance");
    }
}

#[test]
fn recall_experiment_certain_sql_answers_are_preserved() {
    // Section 7: "our procedure returns precisely certain answers that are
    // also returned by SQL evaluation" — recall was 100% in every experiment.
    // We check the measurable proxy for Q1 and Q3, whose detectors flag
    // *exactly* the answers the weakened NOT EXISTS can drop (for Q4 the
    // paper's Algorithm 2 is strictly weaker than the rewriting, so the proxy
    // does not apply): every SQL answer not flagged as a false positive by
    // the detector is also returned by Q+.
    let workload = Workload::new(0.0004, 0.04, 33);
    let db = workload.incomplete_instance();
    let engine = Engine::new(&db);
    let rewriter = CertainRewriter::new();
    let params = workload.params(&db, 2);
    for q in [1usize, 3] {
        let expr = query_by_number(q, &params).expect("query exists");
        let sql = engine.execute(&expr).expect("runs");
        let plus = rewriter.rewrite_plus(&expr, &db).expect("translates");
        let certain = engine.execute(&plus).expect("runs");
        for t in sql.iter() {
            let flagged = match q {
                1 => certus::tpch::fp_detect::detect_q1(&db, t),
                _ => certus::tpch::fp_detect::detect_q3(&db, t),
            };
            if !flagged {
                assert!(certain.contains(t), "Q{q}+ missed the certain SQL answer {t}");
            }
        }
    }
}

#[test]
fn experiment_harness_smoke_runs() {
    // The experiment functions behind every figure/table execute end to end
    // at smoke scale (full-scale runs happen via the `experiments` binary).
    let fig1 = certus_bench_smoke::fig1();
    assert!(!fig1.is_empty());
}

/// Minimal re-implementation of the figure-1 smoke path without depending on
/// the bench crate (kept as a dev-dependency-free sanity check that the
/// public APIs compose the way the harness uses them).
mod certus_bench_smoke {
    use super::*;

    pub fn fig1() -> Vec<(usize, f64)> {
        let workload = Workload::new(0.0003, 0.08, 8);
        let db = workload.incomplete_instance();
        let engine = Engine::new(&db);
        let params = workload.params(&db, 0);
        let mut out = Vec::new();
        for q in 1..=4usize {
            let expr = query_by_number(q, &params).expect("query exists");
            let answers = engine.execute(&expr).expect("runs");
            let fp = count_false_positives(q, &db, &params, &answers);
            let rate = if answers.is_empty() { 0.0 } else { fp as f64 / answers.len() as f64 };
            out.push((q, rate));
        }
        out
    }
}
