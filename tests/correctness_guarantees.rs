//! Property-based integration tests of the central theorem: `Q⁺(D) ⊆
//! cert(Q, D)` (Theorem 1), checked against the exhaustive certain-answer
//! oracle on randomly generated small incomplete databases and randomly
//! generated queries from the supported fragment.

use certus::algebra::builder::{eq, eq_const, neq};
use certus::algebra::{eval, NullSemantics, RaExpr};
use certus::core::certain::CertainOracle;
use certus::core::{translate_plus, translate_star, ConditionDialect};
use certus::data::builder::rel;
use certus::data::null::NullId;
use certus::data::{Database, Value};
use proptest::prelude::*;

/// A small random database over two unary/binary relations with a bounded
/// number of nulls (so the exhaustive oracle stays cheap).
fn arb_database() -> impl Strategy<Value = Database> {
    let val = prop_oneof![
        (0i64..4).prop_map(Value::Int),
        (1u64..4).prop_map(|i| Value::Null(NullId(i))),
    ];
    let row2 = prop::collection::vec(val.clone(), 2);
    let rel_r = prop::collection::vec(row2.clone(), 0..5);
    let rel_s = prop::collection::vec(row2, 0..5);
    (rel_r, rel_s).prop_map(|(r_rows, s_rows)| {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a", "b"], r_rows));
        db.insert_relation("s", rel(&["c", "d"], s_rows));
        db
    })
}

/// A random query from the first-order fragment the translations support.
fn arb_query() -> impl Strategy<Value = RaExpr> {
    let base = prop_oneof![
        Just(RaExpr::relation("r")),
        Just(RaExpr::relation("r").select(eq("a", "b"))),
        Just(RaExpr::relation("r").select(neq("a", "b"))),
        Just(RaExpr::relation("r").select(eq_const("a", 1i64))),
    ];
    base.prop_flat_map(|b| {
        prop_oneof![
            Just(b.clone()),
            Just(b.clone().anti_join(RaExpr::relation("s"), eq("a", "c"))),
            Just(b.clone().semi_join(RaExpr::relation("s"), eq("a", "c"))),
            Just(b.clone().difference(RaExpr::relation("s").project(&["c", "d"]).rename(&["a", "b"]))),
            Just(
                b.clone()
                    .anti_join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d")))
                    .project(&["a"])
            ),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1 (correctness guarantees): every tuple returned by Q+ under
    /// SQL evaluation is a certain answer with nulls.
    #[test]
    fn q_plus_returns_only_certain_answers(db in arb_database(), q in arb_query()) {
        let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
        let answers = eval(&plus, &db, NullSemantics::Sql).unwrap();
        let oracle = CertainOracle::with_limit(4_000_000);
        for t in answers.iter() {
            match oracle.is_certain(&q, &db, t) {
                Ok(is_certain) => prop_assert!(is_certain, "false positive {t} for {q}"),
                Err(_) => {} // oracle budget exceeded: skip this case
            }
        }
    }

    /// Lemma 2: Q★ represents potential answers — every tuple SQL evaluation
    /// returns on some valuation-completed database is covered by Q★(D) under
    /// some valuation. We check the weaker, directly testable consequence
    /// used by the paper: Q(v(D)) ⊆ v(Q★(D)) for the identity-style valuation
    /// mapping every null to a fresh constant.
    #[test]
    fn q_star_overapproximates_fresh_valuation(db in arb_database(), q in arb_query()) {
        use certus::data::Valuation;
        let star = translate_star(&q, ConditionDialect::Sql).unwrap();
        let star_out = eval(&star, &db, NullSemantics::Sql).unwrap();
        let mut v = Valuation::new();
        for (i, id) in db.active_domain().nulls.iter().enumerate() {
            v.set(*id, Value::Int(1_000 + i as i64));
        }
        let ground = db.apply(&v);
        let answers = eval(&q, &ground, NullSemantics::Sql).unwrap();
        let image: Vec<_> = star_out.iter().map(|t| t.apply(&v)).collect();
        for t in answers.iter() {
            prop_assert!(image.contains(t), "{t} missing from Q* image for {q}");
        }
    }

    /// Fact 1: naive evaluation computes exactly the certain answers with
    /// nulls for positive queries.
    #[test]
    fn naive_evaluation_is_exact_on_positive_queries(db in arb_database()) {
        let q = RaExpr::relation("r")
            .select(eq_const("a", 1i64))
            .semi_join(RaExpr::relation("s"), eq("a", "c"));
        let naive = eval(&q, &db, NullSemantics::Naive).unwrap();
        let oracle = CertainOracle::with_limit(4_000_000);
        // Naive answers are certain…
        for t in naive.iter() {
            if let Ok(c) = oracle.is_certain(&q, &db, t) {
                prop_assert!(c, "naive returned non-certain {t}");
            }
        }
        // …and every certain answer among the candidate tuples of r is returned.
        let candidates = db.relation("r").unwrap().clone();
        if let Ok(certain) = oracle.certain_among(&q, &db, &candidates) {
            for t in certain.iter() {
                prop_assert!(naive.contains(t), "naive missed certain answer {t}");
            }
        }
    }
}

#[test]
fn incomparability_examples_from_section_6() {
    // D1: Q+ misses a certain answer SQL returns; D2: Q+ (theoretical) finds
    // one SQL misses. Both directions are exercised in unit tests of
    // certus-core; here we just confirm the two evaluations are incomparable
    // on D1 ∪ D2 style data.
    let mut db = Database::new();
    db.insert_relation(
        "r",
        rel(&["a", "b"], vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(2), Value::Null(NullId(1))]]),
    );
    db.insert_relation(
        "s",
        rel(&["c", "d"], vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Null(NullId(2)), Value::Int(2)]]),
    );
    let q = RaExpr::relation("r").difference(RaExpr::relation("s").rename(&["a", "b"]));
    let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
    let sql = eval(&q, &db, NullSemantics::Sql).unwrap();
    let certain = eval(&plus, &db, NullSemantics::Sql).unwrap();
    assert!(certain.len() <= sql.len());
}
