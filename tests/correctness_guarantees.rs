//! Property-style integration tests of the central theorem: `Q⁺(D) ⊆
//! cert(Q, D)` (Theorem 1), checked against the exhaustive certain-answer
//! oracle on randomly generated small incomplete databases and randomly
//! generated queries from the supported fragment — with and without the
//! planner's rewrite pipeline, which must not affect certainty.

use certus::algebra::builder::{eq, eq_const, neq};
use certus::algebra::{eval, NullSemantics, RaExpr};
use certus::core::certain::CertainOracle;
use certus::core::{translate_plus, translate_star, ConditionDialect};
use certus::data::builder::rel;
use certus::data::null::NullId;
use certus::data::{Database, Value};
use certus::plan::Planner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random database over two binary relations with a bounded number
/// of nulls (so the exhaustive oracle stays cheap).
fn random_db(rng: &mut StdRng) -> Database {
    let value = |rng: &mut StdRng| {
        if rng.gen_bool(0.3) {
            Value::Null(NullId(rng.gen_range(1..4u64)))
        } else {
            Value::Int(rng.gen_range(0..4i64))
        }
    };
    let rows = |rng: &mut StdRng| {
        let n = rng.gen_range(0..5usize);
        (0..n).map(|_| vec![value(rng), value(rng)]).collect::<Vec<_>>()
    };
    let mut db = Database::new();
    let r_rows = rows(rng);
    let s_rows = rows(rng);
    db.insert_relation("r", rel(&["a", "b"], r_rows));
    db.insert_relation("s", rel(&["c", "d"], s_rows));
    db
}

/// The query fragment the translations support, crossed base × wrapper.
fn fragment_queries() -> Vec<RaExpr> {
    let bases = [
        RaExpr::relation("r"),
        RaExpr::relation("r").select(eq("a", "b")),
        RaExpr::relation("r").select(neq("a", "b")),
        RaExpr::relation("r").select(eq_const("a", 1i64)),
    ];
    let mut out = Vec::new();
    for b in bases {
        out.push(b.clone());
        out.push(b.clone().anti_join(RaExpr::relation("s"), eq("a", "c")));
        out.push(b.clone().semi_join(RaExpr::relation("s"), eq("a", "c")));
        out.push(
            b.clone().difference(RaExpr::relation("s").project(&["c", "d"]).rename(&["a", "b"])),
        );
        out.push(
            b.anti_join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d"))).project(&["a"]),
        );
    }
    out
}

/// Theorem 1 (correctness guarantees): every tuple returned by Q+ under SQL
/// evaluation is a certain answer with nulls — with the pass pipeline both
/// off and on.
#[test]
fn q_plus_returns_only_certain_answers() {
    let mut rng = StdRng::seed_from_u64(0x7E0);
    let planner = Planner::new();
    for case in 0..10 {
        let db = random_db(&mut rng);
        for q in fragment_queries() {
            let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
            let optimized = planner.optimize(&plus, &db).unwrap();
            for rewritten in [&plus, &optimized] {
                let answers = eval(rewritten, &db, NullSemantics::Sql).unwrap();
                let oracle = CertainOracle::with_limit(4_000_000);
                for t in answers.iter() {
                    // An Err means the oracle budget was exceeded: skip.
                    if let Ok(is_certain) = oracle.is_certain(&q, &db, t) {
                        assert!(is_certain, "case {case}: false positive {t} for {q}");
                    }
                }
            }
        }
    }
}

/// Lemma 2: Q★ represents potential answers — every tuple SQL evaluation
/// returns on some valuation-completed database is covered by Q★(D) under
/// some valuation. We check the weaker, directly testable consequence used
/// by the paper: Q(v(D)) ⊆ v(Q★(D)) for the identity-style valuation mapping
/// every null to a fresh constant.
#[test]
fn q_star_overapproximates_fresh_valuation() {
    use certus::data::Valuation;
    let mut rng = StdRng::seed_from_u64(0x57A2);
    for case in 0..10 {
        let db = random_db(&mut rng);
        for q in fragment_queries() {
            let star = translate_star(&q, ConditionDialect::Sql).unwrap();
            let star_out = eval(&star, &db, NullSemantics::Sql).unwrap();
            let mut v = Valuation::new();
            for (i, id) in db.active_domain().nulls.iter().enumerate() {
                v.set(*id, Value::Int(1_000 + i as i64));
            }
            let ground = db.apply(&v);
            let answers = eval(&q, &ground, NullSemantics::Sql).unwrap();
            let image: Vec<_> = star_out.iter().map(|t| t.apply(&v)).collect();
            for t in answers.iter() {
                assert!(image.contains(t), "case {case}: {t} missing from Q* image for {q}");
            }
        }
    }
}

/// Fact 1: naive evaluation computes exactly the certain answers with nulls
/// for positive queries.
#[test]
fn naive_evaluation_is_exact_on_positive_queries() {
    let mut rng = StdRng::seed_from_u64(0xFAC7);
    for case in 0..24 {
        let db = random_db(&mut rng);
        let q = RaExpr::relation("r")
            .select(eq_const("a", 1i64))
            .semi_join(RaExpr::relation("s"), eq("a", "c"));
        let naive = eval(&q, &db, NullSemantics::Naive).unwrap();
        let oracle = CertainOracle::with_limit(4_000_000);
        // Naive answers are certain…
        for t in naive.iter() {
            if let Ok(c) = oracle.is_certain(&q, &db, t) {
                assert!(c, "case {case}: naive returned non-certain {t}");
            }
        }
        // …and every certain answer among the candidate tuples of r is returned.
        let candidates = db.relation("r").unwrap().clone();
        if let Ok(certain) = oracle.certain_among(&q, &db, &candidates) {
            for t in certain.iter() {
                assert!(naive.contains(t), "case {case}: naive missed certain answer {t}");
            }
        }
    }
}

#[test]
fn incomparability_examples_from_section_6() {
    // D1: Q+ misses a certain answer SQL returns; D2: Q+ (theoretical) finds
    // one SQL misses. Both directions are exercised in unit tests of
    // certus-core; here we just confirm the two evaluations are incomparable
    // on D1 ∪ D2 style data.
    let mut db = Database::new();
    db.insert_relation(
        "r",
        rel(
            &["a", "b"],
            vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Int(2), Value::Null(NullId(1))]],
        ),
    );
    db.insert_relation(
        "s",
        rel(
            &["c", "d"],
            vec![vec![Value::Int(1), Value::Int(2)], vec![Value::Null(NullId(2)), Value::Int(2)]],
        ),
    );
    let q = RaExpr::relation("r").difference(RaExpr::relation("s").rename(&["a", "b"]));
    let plus = translate_plus(&q, ConditionDialect::Sql).unwrap();
    let sql = eval(&q, &db, NullSemantics::Sql).unwrap();
    let certain = eval(&plus, &db, NullSemantics::Sql).unwrap();
    assert!(certain.len() <= sql.len());
}
