//! The physical engine must agree with the reference evaluator on randomly
//! generated databases and queries — under both SQL and naive semantics.

use certus::algebra::builder::{eq, eq_const, is_null, neq};
use certus::algebra::{eval, NullSemantics, RaExpr};
use certus::data::builder::rel;
use certus::data::null::NullId;
use certus::data::{Database, Value};
use certus::Engine;
use proptest::prelude::*;

fn arb_database() -> impl Strategy<Value = Database> {
    let val = prop_oneof![
        (0i64..5).prop_map(Value::Int),
        (1u64..5).prop_map(|i| Value::Null(NullId(i))),
    ];
    let row = prop::collection::vec(val, 2);
    let rows = prop::collection::vec(row, 0..8);
    (rows.clone(), rows).prop_map(|(r_rows, s_rows)| {
        let mut db = Database::new();
        db.insert_relation("r", rel(&["a", "b"], r_rows));
        db.insert_relation("s", rel(&["c", "d"], s_rows));
        db
    })
}

fn arb_query() -> impl Strategy<Value = RaExpr> {
    prop_oneof![
        Just(RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c"))),
        Just(RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d")))),
        Just(RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d")))),
        Just(RaExpr::relation("r").semi_join(RaExpr::relation("s"), eq("a", "c"))),
        Just(RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "c"))),
        Just(RaExpr::relation("r").anti_join(RaExpr::relation("s"), is_null("c"))),
        Just(RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "c").or(is_null("c")))),
        Just(RaExpr::relation("r").select(eq_const("a", 2i64)).project(&["a"])),
        Just(RaExpr::relation("r").project(&["a"]).union(RaExpr::relation("s").project(&["c"]))),
        Just(RaExpr::relation("r").project(&["a"]).difference(RaExpr::relation("s").project(&["c"]))),
        Just(RaExpr::relation("r").product(RaExpr::relation("s")).select(neq("b", "d"))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_agrees_with_reference_evaluator(
        db in arb_database(),
        q in arb_query(),
        naive in any::<bool>(),
    ) {
        let semantics = if naive { NullSemantics::Naive } else { NullSemantics::Sql };
        let engine_out = Engine::with_semantics(&db, semantics)
            .execute(&q)
            .unwrap()
            .distinct()
            .sorted();
        let reference_out = eval(&q, &db, semantics).unwrap().distinct().sorted();
        prop_assert_eq!(engine_out.tuples(), reference_out.tuples(), "query {}", q);
    }
}

#[test]
fn engine_agrees_on_translated_tpch_queries() {
    use certus::tpch::{query_by_number, Workload};
    use certus::CertainRewriter;
    let workload = Workload::new(0.0002, 0.05, 77);
    let db = workload.incomplete_instance();
    let params = workload.params(&db, 0);
    let rewriter = CertainRewriter::new();
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).expect("query exists");
        let plus = rewriter.rewrite_plus(&expr, &db).expect("translates");
        for query in [&expr, &plus] {
            let engine_out = Engine::new(&db).execute(query).unwrap().distinct().sorted();
            let reference_out = eval(query, &db, NullSemantics::Sql).unwrap().distinct().sorted();
            assert_eq!(engine_out.tuples(), reference_out.tuples(), "Q{q}");
        }
    }
}
