//! The physical engine must agree with the reference evaluator on randomly
//! generated databases and queries — under both SQL and naive semantics —
//! and the planner's rewrite passes must be result-equivalent to the
//! unplanned reference evaluation (each pass individually and the full
//! pipeline), on randomized databases with nulls.

use certus::algebra::builder::{eq, eq_const, is_null, neq};
use certus::algebra::{eval, NullSemantics, RaExpr};
use certus::data::builder::rel;
use certus::data::null::NullId;
use certus::data::{Database, Value};
use certus::plan::{Pass, PassContext, PassManager, PlanOptions, Planner};
use certus::Engine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random two-table database with marked nulls: `r(a, b)` and `s(c, d)`,
/// 0–7 rows each, values drawn from a small domain so joins actually match.
fn random_db(rng: &mut StdRng) -> Database {
    let value = |rng: &mut StdRng| {
        if rng.gen_bool(0.25) {
            Value::Null(NullId(rng.gen_range(1..5u64)))
        } else {
            Value::Int(rng.gen_range(0..5i64))
        }
    };
    let rows = |rng: &mut StdRng| {
        let n = rng.gen_range(0..8usize);
        (0..n).map(|_| vec![value(rng), value(rng)]).collect::<Vec<_>>()
    };
    let mut db = Database::new();
    let r_rows = rows(rng);
    let s_rows = rows(rng);
    db.insert_relation("r", rel(&["a", "b"], r_rows));
    db.insert_relation("s", rel(&["c", "d"], s_rows));
    db
}

/// The query shapes under test: every physical strategy (hash / nested loop /
/// decorrelated), plus set operations and projections — and one query per
/// operator the engine's compiled runtime implements natively (rename,
/// intersection, unification semijoins, division, distinct, aggregation,
/// `LIKE`/`IN` conditions), so every native operator is pitted against the
/// reference evaluator.
fn engine_queries() -> Vec<RaExpr> {
    use certus::algebra::{AggExpr, AggFunc, Condition, Operand};
    vec![
        RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c")),
        RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").or(is_null("d"))),
        RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d"))),
        RaExpr::relation("r").semi_join(RaExpr::relation("s"), eq("a", "c")),
        RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "c")),
        RaExpr::relation("r").anti_join(RaExpr::relation("s"), is_null("c")),
        RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "c").or(is_null("c"))),
        RaExpr::relation("r").select(eq_const("a", 2i64)).project(&["a"]),
        RaExpr::relation("r").project(&["a"]).union(RaExpr::relation("s").project(&["c"])),
        RaExpr::relation("r").project(&["a"]).difference(RaExpr::relation("s").project(&["c"])),
        RaExpr::relation("r").product(RaExpr::relation("s")).select(neq("b", "d")),
        // Native-runtime coverage: rename, intersect, unify semi/anti,
        // division, distinct, aggregate, IN-list conditions.
        RaExpr::relation("r").rename(&["x", "y"]).select(eq_const("x", 1i64)).project(&["y"]),
        RaExpr::relation("r").project(&["a"]).intersect(RaExpr::relation("s").project(&["c"])),
        RaExpr::relation("r").unify_semi_join(RaExpr::relation("s")),
        RaExpr::relation("r").unify_anti_join(RaExpr::relation("s")),
        RaExpr::relation("r")
            .divide(RaExpr::relation("s").project(&["c"]).rename(&["b"]).distinct()),
        RaExpr::relation("r").project(&["b"]).distinct().distinct(),
        // COUNT aggregates only: MIN/MAX/SUM/AVG over an all-null group
        // yield a *fresh* null, which can never compare equal across two
        // independent evaluations.
        RaExpr::relation("r").aggregate(
            &["a"],
            vec![AggExpr::count_star("n"), AggExpr::new(AggFunc::Count, "b", "nb")],
        ),
        RaExpr::relation("r").select(Condition::InList {
            expr: Operand::Col("a".into()),
            list: vec![certus::data::Value::Int(1), certus::data::Value::Int(3)],
            negated: true,
        }),
    ]
}

#[test]
fn engine_agrees_with_reference_evaluator() {
    let mut rng = StdRng::seed_from_u64(0xE26);
    for case in 0..64 {
        let db = random_db(&mut rng);
        for q in engine_queries() {
            for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
                let engine_out =
                    Engine::with_semantics(&db, semantics).execute(&q).unwrap().distinct().sorted();
                let reference_out = eval(&q, &db, semantics).unwrap().distinct().sorted();
                assert_eq!(
                    engine_out.tuples(),
                    reference_out.tuples(),
                    "case {case}, query {q}, semantics {semantics:?}"
                );
            }
        }
    }
}

/// The compiled operator runtime must agree with the pre-compilation
/// delegating execution path (the physical-level oracle) on every native
/// operator, on randomized null databases, under both semantics.
#[test]
fn compiled_runtime_agrees_with_delegating_path() {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for case in 0..48 {
        let db = random_db(&mut rng);
        for q in engine_queries() {
            for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
                let engine = certus::engine::Engine::with_semantics(&db, semantics);
                let plan = engine.plan(&q).unwrap();
                let compiled = engine.execute_physical(&plan).unwrap().distinct().sorted();
                let delegating =
                    engine.execute_physical_delegating(&plan).unwrap().distinct().sorted();
                assert_eq!(
                    compiled.tuples(),
                    delegating.tuples(),
                    "case {case}, query {q}, semantics {semantics:?}"
                );
            }
        }
    }
}

/// The vectorized runtime must agree with both the row-at-a-time compiled
/// runtime (same compiled plans, different execution configuration) and the
/// delegating oracle, on randomized null databases, under both semantics —
/// the `parallel_floor(0)` configuration also drives the morsel-parallel
/// vectorized paths when `CERTUS_THREADS > 1`.
#[test]
fn vectorized_runtime_agrees_with_row_path_and_delegating() {
    use certus::EngineConfig;
    let mut rng = StdRng::seed_from_u64(0x5EC7);
    for case in 0..48 {
        let db = random_db(&mut rng);
        for q in engine_queries() {
            for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
                let vec_engine = certus::engine::Engine::configured(
                    &db,
                    semantics,
                    EngineConfig::from_env().with_parallel_floor(0).with_vectorized(true),
                );
                let row_engine = certus::engine::Engine::configured(
                    &db,
                    semantics,
                    EngineConfig::serial().with_vectorized(false),
                );
                // Plan with the (possibly parallel) vectorized engine so the
                // plan carries exchanges when CERTUS_THREADS > 1; the serial
                // row engine runs the same plan with its exchanges inert.
                let plan = vec_engine.plan(&q).unwrap();
                let vectorized = vec_engine.execute_physical(&plan).unwrap().distinct().sorted();
                let row = row_engine.execute_physical(&plan).unwrap().distinct().sorted();
                let delegating =
                    row_engine.execute_physical_delegating(&plan).unwrap().distinct().sorted();
                assert_eq!(
                    vectorized.tuples(),
                    row.tuples(),
                    "vectorized vs row path: case {case}, query {q}, semantics {semantics:?}"
                );
                assert_eq!(
                    vectorized.tuples(),
                    delegating.tuples(),
                    "vectorized vs delegating: case {case}, query {q}, semantics {semantics:?}"
                );
            }
        }
    }
}

/// Query shapes that exercise every rewrite pass: selections above joins and
/// products (pushdown), nested/aliased projections (collapse), constant
/// comparisons (fold), OR'd anti-join and join conditions (or-split) and
/// `IS NULL` atoms (null-prune, given the nullable test schema: a no-op that
/// must stay a no-op).
fn planner_queries() -> Vec<RaExpr> {
    use certus::algebra::ProjCol;
    let mut queries = engine_queries();
    queries.extend(vec![
        RaExpr::relation("r")
            .product(RaExpr::relation("s"))
            .select(eq("a", "c").and(eq_const("b", 2i64))),
        RaExpr::relation("r")
            .join(RaExpr::relation("s"), eq("a", "c"))
            .select(neq("b", "d").or(is_null("d"))),
        RaExpr::relation("r")
            .project_cols(vec![ProjCol::aliased("a", "x"), ProjCol::named("b")])
            .project_cols(vec![ProjCol::aliased("x", "y")])
            .select(eq_const("y", 1i64)),
        RaExpr::relation("r").project(&["a", "b"]).distinct().distinct(),
        RaExpr::relation("r").select(eq_const("a", 3i64).and(certus::Condition::True)),
        RaExpr::relation("r")
            .anti_join(RaExpr::relation("s"), eq("a", "c").and(neq("b", "d").or(is_null("d")))),
        RaExpr::relation("r")
            .select(is_null("a").or(eq("a", "b")))
            .anti_join(RaExpr::relation("s"), eq("a", "c").or(is_null("c"))),
        RaExpr::relation("r").unify_anti_join(RaExpr::relation("s")),
        RaExpr::relation("r")
            .project(&["a"])
            .union(RaExpr::relation("s").project(&["c"]).rename(&["a"]))
            .select(eq_const("a", 1i64)),
        // Union whose right branch has the selected column at a different
        // position: pushdown must refuse (union alignment is positional).
        RaExpr::relation("r")
            .union(RaExpr::relation("s").rename(&["b", "a"]))
            .select(eq_const("a", 1i64)),
    ]);
    queries
}

/// Every pass individually, and the full pipeline, must be result-equivalent
/// to the unplanned reference evaluation — under both null semantics, so the
/// rewrites are *strongly* semantics-preserving.
#[test]
fn passes_and_pipeline_are_result_equivalent_to_reference() {
    let manager = PassManager::standard();
    let options = PlanOptions::default();
    let mut rng = StdRng::seed_from_u64(0x9A55);
    for case in 0..24 {
        let db = random_db(&mut rng);
        for q in planner_queries() {
            let ctx = PassContext { catalog: &db, options: &options };
            for pass in [
                &certus::plan::passes::fold::FoldPass as &dyn Pass,
                &certus::plan::passes::pushdown::PushdownPass,
                &certus::plan::passes::collapse::CollapsePass,
                &certus::plan::passes::null_prune::NullPrunePass,
                &certus::plan::passes::key_antijoin::KeyAntiJoinPass,
                &certus::plan::passes::or_split::SplitOrAntiJoinPass,
                &certus::plan::passes::or_split::SplitOrJoinPass,
            ] {
                let rewritten = pass.run(&q, &ctx).unwrap();
                for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
                    let a = eval(&q, &db, semantics).unwrap().distinct().sorted();
                    let b = eval(&rewritten, &db, semantics).unwrap().distinct().sorted();
                    assert_eq!(
                        a.tuples(),
                        b.tuples(),
                        "case {case}, pass {}, query {q} → {rewritten}, {semantics:?}",
                        pass.name()
                    );
                }
            }
            let piped = manager.run(&q, &db).unwrap();
            for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
                let a = eval(&q, &db, semantics).unwrap().distinct().sorted();
                let b = eval(&piped, &db, semantics).unwrap().distinct().sorted();
                assert_eq!(
                    a.tuples(),
                    b.tuples(),
                    "case {case}, pipeline, query {q} → {piped}, {semantics:?}"
                );
            }
        }
    }
}

/// Planner-on and planner-off must produce identical results through the
/// physical engine as well (heuristic plans of the raw query vs. cost-based
/// plans of the rewritten query).
#[test]
fn planner_on_vs_off_execute_identically() {
    let mut rng = StdRng::seed_from_u64(0x0FF0);
    let planner = Planner::new();
    for case in 0..16 {
        let db = random_db(&mut rng);
        let engine = Engine::new(&db);
        let stats = certus::StatisticsCatalog::analyze(&db);
        for q in planner_queries() {
            let off = engine.execute(&q).unwrap().distinct().sorted();
            let optimized = planner.optimize(&q, &db).unwrap();
            let on = engine.execute(&optimized).unwrap().distinct().sorted();
            assert_eq!(off.tuples(), on.tuples(), "case {case}, query {q}");
            let physical = planner.plan_with(&q, &db, &stats).unwrap();
            let cost_based = engine.execute_physical(&physical).unwrap().distinct().sorted();
            assert_eq!(off.tuples(), cost_based.tuples(), "case {case}, physical, query {q}");
        }
    }
}

#[test]
fn engine_agrees_on_translated_tpch_queries() {
    use certus::tpch::{query_by_number, Workload};
    use certus::CertainRewriter;
    let workload = Workload::new(0.0002, 0.05, 77);
    let db = workload.incomplete_instance();
    let params = workload.params(&db, 0);
    let rewriter = CertainRewriter::new();
    for q in 1..=4usize {
        let expr = query_by_number(q, &params).expect("query exists");
        let plus = rewriter.rewrite_plus(&expr, &db).expect("translates");
        for query in [&expr, &plus] {
            let engine_out = Engine::new(&db).execute(query).unwrap().distinct().sorted();
            let reference_out = eval(query, &db, NullSemantics::Sql).unwrap().distinct().sorted();
            assert_eq!(engine_out.tuples(), reference_out.tuples(), "Q{q}");
        }
    }
}
