//! The `CERTUS_THREADS` environment override of [`EngineConfig::from_env`].
//!
//! This lives in its own test binary with a single test: mutating the
//! process environment races `getenv` calls from concurrently running
//! threads (which is why `set_var` became unsafe in edition 2024), so no
//! other test may share this process.

use certus::engine::EngineConfig;

#[test]
fn certus_threads_env_overrides_the_default_config() {
    std::env::set_var("CERTUS_THREADS", "3");
    assert_eq!(EngineConfig::from_env().threads, 3);
    std::env::set_var("CERTUS_THREADS", "0");
    assert!(EngineConfig::from_env().threads >= 1, "zero must fall back");
    std::env::set_var("CERTUS_THREADS", "not-a-number");
    assert!(EngineConfig::from_env().threads >= 1, "garbage must fall back");
    std::env::remove_var("CERTUS_THREADS");
    assert!(EngineConfig::from_env().threads >= 1);
}
