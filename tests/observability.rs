//! Observability coverage across the public facade: per-execution
//! [`certus::QueryProfile`]s agree with the relations the engine returns,
//! `EXPLAIN ANALYZE` ([`certus::Session::explain_analyze`]) annotates every
//! node with estimates *and* actuals, divergence is flagged where the cost
//! model misestimates a skewed-null workload, and profiles stay well-formed
//! across thread counts and with vectorization on or off.

use certus::algebra::builder::{eq, eq_const};
use certus::data::builder::rel;
use certus::data::null::NullId;
use certus::data::{Database, Value};
use certus::obs::names;
use certus::tpch::Workload;
use certus::{AnalyzedPlan, Certainty, EngineConfig, QueryProfile, RaExpr, Session};

fn paper_db() -> Database {
    let mut db = Database::new();
    db.insert_relation(
        "r",
        rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]),
    );
    db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(2)], vec![Value::Null(NullId(1))]]));
    db
}

fn paper_query() -> RaExpr {
    RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"))
}

/// Walk a profile tree checking the structural invariants every execution
/// must satisfy: non-negative inclusive walls that cover the children (the
/// serial case; parallel paths may overlap, so callers choose when to apply
/// this), and leaf scans that report the base relation's cardinality.
fn assert_serial_walls(profile: &QueryProfile) {
    let child_ns: u64 = profile.children.iter().map(|c| c.wall_ns).sum();
    assert!(
        profile.wall_ns >= child_ns || profile.wall_ns == 0,
        "inclusive wall of {} ({}) below its children's sum ({})",
        profile.op,
        profile.wall_ns,
        child_ns
    );
    for c in &profile.children {
        assert_serial_walls(c);
    }
}

#[test]
fn profile_row_counts_match_the_relations() {
    let db = paper_db();
    let session = Session::builder(db).config(EngineConfig::serial()).build();
    for certainty in [Certainty::Plain, Certainty::CertainPlus, Certainty::PossibleStar] {
        let prepared = session.prepare(&paper_query(), certainty).unwrap();
        let (answers, profiles) = session.execute_prepared_profiled(&prepared).unwrap();
        assert_eq!(profiles.len(), 1);
        let profile = &profiles[0];
        assert_eq!(
            profile.rows_out as usize,
            answers.len(),
            "{certainty:?}: profile root must report the answer cardinality"
        );
        assert_serial_walls(profile);
        // Scans report the stored relations' sizes.
        for node in profile.flatten() {
            match node.op.as_str() {
                "scan(r)" => assert_eq!(node.rows_out, 3),
                "scan(s)" => assert_eq!(node.rows_out, 2),
                _ => {}
            }
        }
    }
}

#[test]
fn explain_analyze_annotates_every_node() {
    let w = Workload::new(0.0005, 0.05, 907);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let q4 = certus::tpch::q4(&params);
    let session = Session::builder(db).config(EngineConfig::serial()).build();
    let analyzed = session.explain_analyze(&q4, Certainty::CertainPlus).unwrap();
    let explain = session.explain(&q4, Certainty::CertainPlus).unwrap();
    assert_eq!(analyzed.node_count(), explain.size(), "annotated tree mirrors EXPLAIN");
    // Every node carries an estimate and an actual, and the text renderer
    // shows them side by side on every line.
    let rendered = analyzed.to_string();
    assert_eq!(rendered.lines().count(), analyzed.node_count());
    for line in rendered.lines() {
        assert!(line.contains("est≈") && line.contains("act="), "unannotated line: {line}");
    }
    for node in analyzed.flatten() {
        assert!(!node.op.is_empty());
        assert!(node.rows_est >= 0.0);
    }
    // The root actual is the answer cardinality.
    let expected = session.execute(&q4, Certainty::CertainPlus).unwrap().len() as u64;
    assert_eq!(analyzed.rows_act, expected);
    // JSON rendering stays well-formed (smoke: balanced braces, keyed rows).
    let json = analyzed.to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches("\"rows_act\"").count(), analyzed.node_count());
}

#[test]
fn skewed_nulls_flag_estimate_divergence() {
    // The translated Q4+ keeps `… OR x IS NULL` disjunction joins whose
    // selectivity the cost model guesses generically; on an instance with
    // plenty of nulls the actuals run away from the estimates, which is
    // exactly what the divergence flag is for.
    let w = Workload::new(0.001, 0.05, 907);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let q4 = certus::tpch::q4(&params);
    let session = Session::builder(db).config(EngineConfig::serial()).build();
    let analyzed = session.explain_analyze(&q4, Certainty::CertainPlus).unwrap();
    assert!(
        analyzed.any_divergence(),
        "expected at least one est-vs-act divergence on Q4+:\n{analyzed}"
    );
    // And the renderer surfaces the flag.
    assert!(analyzed.to_string().contains("est↯act"));
}

#[test]
fn profiles_are_well_formed_across_thread_counts() {
    let w = Workload::new(0.0005, 0.03, 41);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let q3 = certus::tpch::q3(&params);
    let serial = Session::builder(w.incomplete_instance()).config(EngineConfig::serial()).build();
    let parallel =
        Session::builder(db).config(EngineConfig::with_threads(4).with_parallel_floor(0)).build();
    let (serial_answers, serial_profiles) = {
        let p = serial.prepare(&q3, Certainty::CertainPlus).unwrap();
        serial.execute_prepared_profiled(&p).unwrap()
    };
    let (parallel_answers, parallel_profiles) = {
        let p = parallel.prepare(&q3, Certainty::CertainPlus).unwrap();
        parallel.execute_prepared_profiled(&p).unwrap()
    };
    assert_eq!(
        serial_answers.relation().sorted().tuples(),
        parallel_answers.relation().sorted().tuples(),
        "threads changed Q3+ answers"
    );
    for (profile, answers) in
        [(&serial_profiles[0], &serial_answers), (&parallel_profiles[0], &parallel_answers)]
    {
        assert_eq!(profile.rows_out as usize, answers.len());
        assert!(profile.node_count() >= 1);
        for node in profile.flatten() {
            assert!(node.invocations >= 1 || node.rows_out == 0, "dead node {}", node.op);
        }
    }
    // The parallel run actually fanned out somewhere and said so.
    let fanned: u64 = parallel_profiles[0].flatten().iter().map(|n| n.workers).sum();
    assert!(fanned > 0, "no operator recorded parallel workers:\n{:?}", parallel_profiles[0]);
    // Serial walls nest; parallel walls may overlap, so only check serial.
    assert_serial_walls(&serial_profiles[0]);
}

#[test]
fn parallel_profiles_report_pool_bounded_workers() {
    use certus::exec::Pool;
    use std::sync::Arc;

    // A private pool of known width: worker counts in profiles must come
    // from the pool (its width caps concurrency), not from the plan's
    // partition fan-out — here 16-way partitioning on a 3-wide pool.
    let pool = Arc::new(Pool::new(3));
    let w = Workload::new(0.0005, 0.03, 63);
    let db = w.incomplete_instance();
    let params = w.params(&db, 0);
    let q3 = certus::tpch::q3(&params);
    let session = Session::builder(db)
        .config(EngineConfig::with_threads(16).with_parallel_floor(0))
        .worker_pool(pool.clone())
        .build();
    let prepared = session.prepare(&q3, Certainty::CertainPlus).unwrap();
    let (_, profiles) = session.execute_prepared_profiled(&prepared).unwrap();
    let mut fanned = 0u64;
    for node in profiles[0].flatten() {
        // Every parallel dispatch accumulates (morsels, workers) pairs with
        // workers ≤ min(pool width, morsels) — so the sums obey the same
        // bounds even after several dispatches on one node.
        assert!(
            node.workers <= node.morsels,
            "{}: more workers ({}) than morsels ({})",
            node.op,
            node.workers,
            node.morsels
        );
        if node.workers > 0 {
            assert!(node.morsels > 0, "{}: workers without morsels", node.op);
        }
        fanned += node.workers;
    }
    assert!(fanned > 0, "no operator recorded parallel workers");
    assert!(pool.peak_busy_workers() <= pool.width());
}

#[test]
fn vectorization_flags_the_path_taken() {
    let q = RaExpr::relation("r").select(eq_const("a", 3i64)).project(&["b"]);
    let run = |vectorized: bool| -> (usize, QueryProfile) {
        let mut db = Database::new();
        let rows = (0..64).map(|i| vec![Value::Int(i % 8), Value::Int(i)]).collect::<Vec<_>>();
        db.insert_relation("r", rel(&["a", "b"], rows));
        let config = EngineConfig::serial().with_vectorized(vectorized);
        let session = Session::builder(db).config(config).build();
        let prepared = session.prepare(&q, Certainty::Plain).unwrap();
        let (answers, profiles) = session.execute_prepared_profiled(&prepared).unwrap();
        (answers.len(), profiles.into_iter().next().unwrap())
    };

    let (vec_len, vec_profile) = run(true);
    let (row_len, row_profile) = run(false);
    assert_eq!(vec_len, 8);
    assert_eq!(row_len, 8);
    let vec_runs = |p: &QueryProfile| p.flatten().iter().map(|n| n.vec_runs).sum::<u64>();
    assert!(vec_runs(&vec_profile) > 0, "vectorized run must tag a vec path");
    assert_eq!(vec_runs(&row_profile), 0, "row run must not tag any vec path");
    // Both report identical answer cardinality and per-step survivors.
    assert_eq!(vec_profile.rows_out, row_profile.rows_out);
    let steps = |p: &QueryProfile| {
        p.flatten()
            .iter()
            .flat_map(|n| n.steps.iter().map(|s| (s.op.clone(), s.rows_out)))
            .collect::<Vec<_>>()
    };
    assert_eq!(steps(&vec_profile), steps(&row_profile), "per-step survivor counts must agree");
}

#[test]
fn session_executions_feed_the_registry_and_analyze_renders() {
    let session = Session::builder(paper_db()).config(EngineConfig::serial()).build();
    let before = certus::obs::registry().snapshot();
    let analyzed: AnalyzedPlan =
        session.explain_analyze(&paper_query(), Certainty::CertainPlus).unwrap();
    assert!(analyzed.to_string().contains("act="));
    session.execute(&paper_query(), Certainty::Both).unwrap();
    let delta = certus::obs::registry().snapshot().delta_since(&before);
    // ≥, not ==: the registry is process-wide and tests share the process.
    assert!(delta.counter(names::SESSION_EXECUTIONS) >= 1);
    assert!(delta.counter(names::PLAN_CACHE_MISSES) >= 1);
}
