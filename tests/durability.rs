//! End-to-end tests for the robustness layer: durable inserts surviving
//! server restarts (WAL recovery), per-request deadlines, idle-connection
//! reaping, and the client's retry behavior against a scripted peer.

use certus::data::builder::rel;
use certus::{Database, RaExpr, Tuple, Value};
use certus_server::client::{Client, RetryPolicy};
use certus_server::protocol::{
    decode_request, encode_response, read_frame, write_frame, Request, Response, WireCertainty,
};
use certus_server::{ErrorCode, Server, ServerConfig};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("certus-durability-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_db() -> Database {
    let mut db = Database::new();
    db.insert_relation("log", rel(&["v"], vec![vec![Value::Int(0)]]));
    db
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        executors: 2,
        engine_threads: 1,
        data_dir: Some(dir.to_path_buf()),
        checkpoint_every: 4,
        ..ServerConfig::default()
    }
}

fn log_values(client: &mut Client) -> Vec<i64> {
    let answers = client.query(WireCertainty::Plain, &RaExpr::relation("log")).expect("query log");
    answers
        .body
        .plain
        .expect("plain answers")
        .iter()
        .map(|t| match t.values()[0] {
            Value::Int(v) => v,
            ref other => panic!("unexpected value {other:?}"),
        })
        .collect()
}

#[test]
fn acked_inserts_survive_a_server_restart() {
    let dir = temp_dir("restart");

    let mut acked = vec![0i64];
    {
        let server = Server::start(seed_db(), durable_config(&dir)).expect("first server");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // Enough rows to cross checkpoint_every, so recovery replays a
        // checkpoint AND a WAL suffix, not just one or the other.
        for i in 1..=11i64 {
            client.insert("log", vec![Tuple::new(vec![Value::Int(i)])]).expect("insert");
            acked.push(i);
        }
        client.close().expect("close");
        server.shutdown();
    }

    // The restarted server recovers from disk; the fallback database passed
    // to `start` (a fresh seed with only row 0) must be ignored.
    let server = Server::start(seed_db(), durable_config(&dir)).expect("second server");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");
    assert_eq!(log_values(&mut client), acked, "recovered state == acknowledged writes");

    // And the recovered store keeps accepting durable writes.
    client.insert("log", vec![Tuple::new(vec![Value::Int(99)])]).expect("post-recovery insert");
    acked.push(99);
    assert_eq!(log_values(&mut client), acked);
    client.close().expect("close");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_folds_through_repeated_restarts() {
    let dir = temp_dir("generations");
    let mut acked = vec![0i64];
    let mut next = 1i64;
    for _ in 0..4 {
        let server = Server::start(seed_db(), durable_config(&dir)).expect("server starts");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        assert_eq!(log_values(&mut client), acked, "each generation recovers the last");
        for _ in 0..5 {
            client.insert("log", vec![Tuple::new(vec![Value::Int(next)])]).expect("insert");
            acked.push(next);
            next += 1;
        }
        // Abrupt teardown: no clean client close, no explicit checkpoint.
        drop(client);
        server.shutdown();
    }
    let server = Server::start(seed_db(), durable_config(&dir)).expect("final server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(log_values(&mut client), acked);
    client.close().expect("close");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_expired_deadline_is_reported_not_executed() {
    // A deliberately heavy query (a three-way cross product) so a 1ms
    // deadline always expires — either while queued or at one of the
    // engine's morsel-boundary cancellation checks.
    let rows: Vec<Vec<Value>> = (0..300).map(|i| vec![Value::Int(i)]).collect();
    let mut db = Database::new();
    db.insert_relation("a", rel(&["x"], rows.clone()));
    db.insert_relation("b", rel(&["y"], rows.clone()));
    db.insert_relation("c", rel(&["z"], rows));
    let heavy = RaExpr::relation("a").product(RaExpr::relation("b")).product(RaExpr::relation("c"));

    let config = ServerConfig { executors: 1, engine_threads: 1, ..ServerConfig::default() };
    let server = Server::start(db, config).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let err = client
        .query_with_deadline(WireCertainty::Plain, &heavy, 1)
        .expect_err("deadline must trip");
    match err {
        certus_server::ClientError::Server { code, .. } => {
            assert_eq!(code, ErrorCode::DeadlineExceeded)
        }
        other => panic!("expected a DeadlineExceeded server error, got {other}"),
    }

    // The connection stays usable: a cheap undeadlined query still runs.
    let ok = client
        .query_with_deadline(WireCertainty::Plain, &RaExpr::relation("a"), 0)
        .expect("no deadline");
    assert_eq!(ok.body.plain.expect("plain").len(), 300);
    client.close().expect("close");
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_with_a_clean_ack() {
    let config = ServerConfig {
        executors: 1,
        engine_threads: 1,
        idle_timeout_ms: 60,
        poll_interval_ms: 5,
        ..ServerConfig::default()
    };
    let server = Server::start(seed_db(), config).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Go quiet past the idle window; the server announces the close with an
    // `Ack` on the server channel (request id 0) before dropping the socket.
    thread::sleep(Duration::from_millis(250));
    match client.recv().expect("the close announcement arrives") {
        (0, Response::Ack { .. }) => {}
        other => panic!("expected a clean Ack on id 0, got {other:?}"),
    }
    server.shutdown();
}

/// A scripted peer speaking the wire protocol, for deterministic retry
/// tests: answers the connect handshake, then runs `script` on each
/// subsequent request (returning `None` leaves the request unanswered).
fn scripted_server(
    script: impl Fn(u64, u64, Request) -> Option<Response> + Send + 'static,
) -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // As the real server does: without nodelay, Nagle + delayed ACK can
        // split the len/payload writes across a client read timeout.
        stream.set_nodelay(true).expect("nodelay");
        let mut served = 0u64;
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(p) => p,
                Err(_) => return,
            };
            let (id, request) = decode_request(&payload).expect("decode");
            let response = if served == 0 {
                // The Client::connect liveness handshake.
                Some(Response::Pong { epoch: 0 })
            } else {
                script(served, id, request)
            };
            served += 1;
            if let Some(resp) = response {
                let _ = write_frame(&mut stream, &encode_response(id, &resp));
            }
        }
    });
    addr
}

#[test]
fn overloaded_responses_are_retried_and_honor_the_hint() {
    // Request #1 (after the handshake) is shed with a retry-after hint;
    // the resend succeeds.
    let addr = scripted_server(|served, _, _| {
        if served == 1 {
            Some(Response::Error {
                code: ErrorCode::Overloaded,
                message: "shed".into(),
                retry_after_ms: 20,
            })
        } else {
            Some(Response::Pong { epoch: 7 })
        }
    });
    let mut client = Client::connect(addr)
        .expect("connect")
        .with_retry(RetryPolicy { max_retries: 3, ..RetryPolicy::default() });
    let t = Instant::now();
    assert_eq!(client.ping().expect("retried ping succeeds"), 7);
    // Jitter keeps the backoff in [hint/2, hint] — at least 10ms slept.
    assert!(t.elapsed() >= Duration::from_millis(10), "the retry-after hint floors the backoff");
    assert_eq!(client.retries(), 1);
}

#[test]
fn overloaded_surfaces_once_retries_are_exhausted() {
    let addr = scripted_server(|_, _, _| {
        Some(Response::Error {
            code: ErrorCode::Overloaded,
            message: "shed".into(),
            retry_after_ms: 1,
        })
    });
    let mut client = Client::connect(addr).expect("connect").with_retry(RetryPolicy {
        max_retries: 2,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        seed: 1,
    });
    let err = client.stats().expect_err("eventually surfaces");
    match err {
        certus_server::ClientError::Server { code, .. } => {
            assert_eq!(code, ErrorCode::Overloaded)
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    assert_eq!(client.retries(), 2);
}

#[test]
fn timeouts_retry_idempotent_requests_but_never_inserts() {
    // The scripted peer stays silent on the first post-handshake request
    // (a ping, which must be retried) and on every insert (which must not).
    let addr = scripted_server(|served, _, request| {
        if served == 1 || matches!(request, Request::Insert { .. }) {
            return None;
        }
        match request {
            Request::Ping => Some(Response::Pong { epoch: 3 }),
            _ => Some(Response::Ack { epoch: 3 }),
        }
    });
    let mut client = Client::connect(addr).expect("connect").with_retry(RetryPolicy {
        max_retries: 2,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        seed: 2,
    });
    client.set_op_timeout(Some(Duration::from_millis(150))).expect("op timeout");

    // Idempotent: the timed-out ping is resent and succeeds.
    assert_eq!(client.ping().expect("retried ping"), 3);
    assert_eq!(client.retries(), 1);

    // Not idempotent: a timed-out insert surfaces instead of resending —
    // the server may have durably applied it even though the ack was lost.
    let err = client
        .insert("log", vec![Tuple::new(vec![Value::Int(1)])])
        .expect_err("inserts never retry on timeout");
    assert!(matches!(err, certus_server::ClientError::Wire(_)), "surfaces the transport timeout");
    assert_eq!(client.retries(), 1, "no retry was attempted");
}

#[test]
fn invalid_rows_are_rejected_without_touching_durable_state() {
    let dir = temp_dir("reject");
    let server = Server::start(seed_db(), durable_config(&dir)).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.insert("log", vec![Tuple::new(vec![Value::Int(1)])]).expect("good insert");
    // Wrong arity: validated against the pinned snapshot and refused before
    // anything reaches the WAL.
    let err = client
        .insert("log", vec![Tuple::new(vec![Value::Int(2), Value::Int(3)])])
        .expect_err("bad row refused");
    assert!(matches!(err, certus_server::ClientError::Server { code: ErrorCode::QueryError, .. }));
    drop(client);
    server.shutdown();

    // Recovery sees only the acknowledged write.
    let server = Server::start(seed_db(), durable_config(&dir)).expect("restart");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    assert_eq!(log_values(&mut client), vec![0, 1]);
    client.close().expect("close");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
