//! Integration tests for the `Session`/`PreparedQuery` facade: plan-cache
//! hit/miss accounting, schema-epoch invalidation, stale-plan detection, and
//! the differential property that session answers are identical to the
//! direct `CertainRewriter` + `Engine` path under both null semantics on
//! randomized null databases.

use certus::algebra::builder::eq;
use certus::data::builder::rel;
use certus::data::inject::NullInjector;
use certus::data::null::NullId;
use certus::tpch::{q1, q2, q3, q4, DbGen, QueryParams};
use certus::{
    CertainRewriter, Certainty, CertusError, Database, Engine, EngineConfig, NullSemantics,
    PlannerKind, RaExpr, Session, Value,
};

fn small_db() -> Database {
    let mut db = Database::new();
    db.insert_relation(
        "r",
        rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]),
    );
    db.insert_relation("s", rel(&["b"], vec![vec![Value::Int(2)], vec![Value::Null(NullId(1))]]));
    db
}

fn diff_query() -> RaExpr {
    RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"))
}

#[test]
fn reexecuting_a_prepared_query_does_no_planning_work() {
    let session = Session::new(small_db());
    let prepared = session.prepare(&diff_query(), Certainty::CertainPlus).unwrap();
    let after_prepare = session.cache_stats();
    assert_eq!((after_prepare.hits, after_prepare.misses), (0, 1));

    // Execute the prepared query many times: the cache counters must not
    // move at all — execution touches neither the rewriter nor a planner.
    for _ in 0..5 {
        assert!(session.execute_prepared(&prepared).unwrap().is_empty());
    }
    let after_runs = session.cache_stats();
    assert_eq!((after_runs.hits, after_runs.misses), (0, 1));
    assert_eq!(after_runs.insertions, 1);

    // Preparing the same query again is a pure cache hit.
    let again = session.prepare(&diff_query(), Certainty::CertainPlus).unwrap();
    assert_eq!(again.schema_epoch(), prepared.schema_epoch());
    let after_rehit = session.cache_stats();
    assert_eq!((after_rehit.hits, after_rehit.misses), (1, 1));
    assert_eq!(after_rehit.insertions, 1, "a hit must not re-plan");

    // The convenience path `execute` goes through the same cache.
    session.execute(&diff_query(), Certainty::CertainPlus).unwrap();
    assert_eq!(session.cache_stats().hits, 2);
}

#[test]
fn schema_epoch_bump_invalidates_cached_plans() {
    let mut session = Session::new(small_db());
    let epoch0 = session.schema_epoch();
    let prepared = session.prepare(&diff_query(), Certainty::CertainPlus).unwrap();
    assert_eq!(prepared.schema_epoch(), epoch0);
    assert_eq!(session.cache_stats().entries, 1);

    // Mutating the database bumps the epoch…
    session.database_mut().insert_relation("t", rel(&["x"], vec![vec![Value::Int(9)]]));
    assert!(session.schema_epoch() > epoch0);

    // …so the old prepared query is refused rather than silently executed…
    match session.execute_prepared(&prepared) {
        Err(CertusError::StalePlan { prepared_epoch, current_epoch }) => {
            assert_eq!(prepared_epoch, epoch0);
            assert_eq!(current_epoch, session.schema_epoch());
        }
        other => panic!("expected StalePlan, got {other:?}"),
    }

    // …and re-preparing is a miss (the stale entry is dropped, not hit).
    session.prepare(&diff_query(), Certainty::CertainPlus).unwrap();
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 2));
    assert_eq!(stats.invalidations, 1, "the stale entry was pruned");
    assert_eq!(stats.entries, 1);
}

#[test]
fn certainty_both_breaks_down_the_sql_answer() {
    let session = Session::new(small_db());
    let both = session.execute(&diff_query(), Certainty::Both).unwrap();
    let breakdown = both.breakdown.expect("Both carries a breakdown");
    assert_eq!(breakdown.total, both.plain.as_ref().unwrap().len());
    assert_eq!(breakdown.certain + breakdown.false_positives, breakdown.total);
    // With ⊥ in s nothing is certain: both SQL answers are false positives.
    assert_eq!(breakdown.false_positives, 2);
    let possible = both.possible.as_ref().expect("Both carries the possible answers");
    for t in both.plain.as_ref().unwrap().iter() {
        assert!(possible.contains(t), "every SQL answer is possible");
    }
}

#[test]
fn prepared_queries_survive_for_each_certainty_and_thread_count() {
    let session = Session::builder(small_db()).threads(1).build();
    for certainty in
        [Certainty::Plain, Certainty::CertainPlus, Certainty::PossibleStar, Certainty::Both]
    {
        let prepared = session.prepare(&diff_query(), certainty).unwrap();
        assert_eq!(prepared.certainty(), certainty);
        let expected = if certainty == Certainty::Both { 3 } else { 1 };
        assert_eq!(prepared.plan_count(), expected);
        session.execute_prepared(&prepared).unwrap();
    }
    // Four distinct certainties → four distinct cache keys.
    assert_eq!(session.cache_stats().entries, 4);
    assert_eq!(session.cache_stats().misses, 4);
}

/// The central differential property: for randomized null databases, under
/// both semantics, the session's answers are exactly what the direct
/// `CertainRewriter` + `Engine` wiring produces.
#[test]
fn session_matches_the_direct_rewriter_plus_engine_path() {
    for seed in [11u64, 42, 77] {
        let complete = DbGen::new(0.0002, seed).generate();
        let db = NullInjector::new(0.05, seed + 1).inject(&complete);
        let params = QueryParams::random(&db, seed);
        for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
            let session = Session::builder(db.clone())
                .semantics(semantics)
                .config(EngineConfig::serial())
                .build();
            let engine = Engine::configured(&db, semantics, EngineConfig::serial());
            let rewriter = match semantics {
                NullSemantics::Sql => CertainRewriter::new(),
                NullSemantics::Naive => CertainRewriter::theoretical(),
            };
            for q in [q1(&params), q2(&params), q3(&params), q4(&params)] {
                // Plain evaluation.
                let via_session = session.execute(&q, Certainty::Plain).unwrap().relation().clone();
                let direct = engine.execute(&q).unwrap();
                assert_eq!(
                    via_session.sorted().tuples(),
                    direct.sorted().tuples(),
                    "plain answers differ ({} semantics, seed {seed}): {q}",
                    semantics.label()
                );
                // Certain-answer evaluation.
                let plus = rewriter.rewrite_plus(&q, &db).unwrap();
                let via_session =
                    session.execute(&q, Certainty::CertainPlus).unwrap().relation().clone();
                let direct = engine.execute(&plus).unwrap();
                assert_eq!(
                    via_session.sorted().tuples(),
                    direct.sorted().tuples(),
                    "certain answers differ ({} semantics, seed {seed}): {q}",
                    semantics.label()
                );
            }
        }
    }
}

#[test]
fn cost_based_sessions_agree_with_heuristic_sessions() {
    let complete = DbGen::new(0.0002, 23).generate();
    let db = NullInjector::new(0.05, 29).inject(&complete);
    let params = QueryParams::random(&db, 3);
    let heuristic = Session::builder(db.clone()).config(EngineConfig::serial()).build();
    let cost_based =
        Session::builder(db).planner(PlannerKind::CostBased).config(EngineConfig::serial()).build();
    for q in [q1(&params), q3(&params), q4(&params)] {
        for certainty in [Certainty::Plain, Certainty::CertainPlus] {
            let a = heuristic.execute(&q, certainty).unwrap().relation().sorted().distinct();
            let b = cost_based.execute(&q, certainty).unwrap().relation().sorted().distinct();
            assert_eq!(a.tuples(), b.tuples(), "planner kinds disagree on {q}");
        }
    }
}

#[test]
fn session_explain_matches_planner_output_shape() {
    let session = Session::new(small_db());
    let explain = session.explain(&diff_query(), Certainty::CertainPlus).unwrap();
    assert!(explain.size() >= 2);
    let rendered = explain.to_string();
    assert!(rendered.contains("rows≈"), "{rendered}");
    // Parallel sessions render exchange operators for large enough inputs —
    // on this tiny database the tree simply stays serial but must still plan.
    let parallel = Session::builder(small_db()).threads(4).build();
    parallel.explain(&diff_query(), Certainty::Plain).unwrap();
}
