//! Vectorized-execution coverage: per-operator agreement between the
//! vectorized and the row-at-a-time runtimes on *identical compiled plans*,
//! over column shapes the randomized integer databases of
//! `engine_vs_reference.rs` never produce (strings, dates, decimals, mixed
//! variants, all-null columns), plus batch↔row round-trips through the
//! public columnar API.

use certus::algebra::builder::{eq, eq_const, gt, is_null, neq};
use certus::algebra::{Condition, NullSemantics, Operand, RaExpr};
use certus::data::builder::rel;
use certus::data::column::Batch;
use certus::data::null::NullId;
use certus::data::value::date;
use certus::data::{Database, Relation, Value};
use certus::engine::Engine;
use certus::EngineConfig;

fn null(i: u64) -> Value {
    Value::Null(NullId(i))
}

/// A database whose columns cover every typed representation, plus a mixed
/// column (`m`: int-or-string), an all-null column (`z`), and interned
/// strings shared across both tables.
fn typed_db() -> Database {
    let mut db = Database::new();
    let r_rel = {
        let s = |t: &str| db.intern_str(t);
        rel(
            &["a", "s", "d", "f", "m", "z"],
            vec![
                vec![
                    Value::Int(1),
                    s("alpha"),
                    date(1995, 3, 1),
                    Value::Float(1.5),
                    Value::Int(7),
                    null(21),
                ],
                vec![
                    Value::Int(2),
                    s("beta"),
                    date(1996, 1, 9),
                    Value::Float(-0.0),
                    s("seven"),
                    null(22),
                ],
                vec![
                    null(1),
                    s("alpha"),
                    date(1997, 7, 4),
                    Value::Float(f64::NAN),
                    Value::Int(8),
                    null(23),
                ],
                vec![
                    Value::Int(4),
                    null(2),
                    date(1995, 3, 1),
                    Value::Float(2.5),
                    s("eight"),
                    null(24),
                ],
                vec![
                    Value::Int(2),
                    s("gamma"),
                    date(1998, 2, 2),
                    Value::Float(1.5),
                    Value::Int(7),
                    null(21),
                ],
            ],
        )
    };
    db.insert_relation("r", r_rel);
    let t_rel = {
        let s = |t: &str| db.intern_str(t);
        rel(
            &["k", "w", "e"],
            vec![
                vec![Value::Int(2), s("beta"), date(1996, 1, 9)],
                vec![Value::Int(4), s("delta"), date(1995, 3, 1)],
                vec![null(1), s("alpha"), date(1997, 7, 4)],
                vec![Value::Int(9), null(3), date(1998, 2, 2)],
            ],
        )
    };
    db.insert_relation("t", t_rel);
    // A table whose join column holds *decimals*, so joining it against
    // `r.a` (ints) exercises the incompatible-representation shortcut.
    db.insert_relation(
        "dec",
        rel(&["k"], vec![vec![Value::Decimal(100)], vec![Value::Decimal(200)], vec![null(4)]]),
    );
    db
}

/// Filter / join / semijoin shapes over every column representation: typed
/// fast paths (ints, dates, floats with NaN/-0.0, interned strings), the
/// `Values` fallbacks (mixed `m`, all-null `z`), `LIKE`/`IN` atoms, and
/// cross-representation keys.
fn queries() -> Vec<RaExpr> {
    let r = RaExpr::relation("r");
    let t = RaExpr::relation("t");
    vec![
        // Typed filters, each comparison operator, over each representation.
        r.clone().select(eq_const("a", 2i64)),
        r.clone().select(gt("a", "a").or(neq("a", "a"))),
        r.clone().select(eq_const("s", "alpha")),
        r.clone().select(Condition::Cmp {
            left: Operand::Col("s".into()),
            op: certus::data::compare::CmpOp::Ge,
            right: Operand::Const(Value::str("beta")),
        }),
        r.clone().select(Condition::Cmp {
            left: Operand::Col("d".into()),
            op: certus::data::compare::CmpOp::Lt,
            right: Operand::Const(date(1996, 6, 1)),
        }),
        r.clone().select(eq_const("f", 1.5f64)),
        r.clone().select(eq_const("f", -0.0f64)),
        // Mixed and all-null columns force the Values fallback.
        r.clone().select(eq_const("m", 7i64)),
        r.clone().select(is_null("z").and(is_null("m").not())),
        // Column-to-column comparisons (typed and cross-variant).
        r.clone().select(eq("a", "a").and(neq("s", "s").not())),
        r.clone().select(eq("a", "m")),
        // LIKE and IN atoms inside the mask framework.
        r.clone().select(Condition::Like {
            expr: Operand::Col("s".into()),
            pattern: "%a%".into(),
            negated: false,
        }),
        r.clone().select(Condition::InList {
            expr: Operand::Col("a".into()),
            list: vec![Value::Int(2), Value::Int(4), Value::Decimal(100)],
            negated: true,
        }),
        // Hash joins / semijoins on typed, string, and null-carrying keys.
        r.clone().join(t.clone(), eq("a", "k")),
        r.clone().join(t.clone(), eq("s", "w")),
        r.clone().join(t.clone(), eq("a", "k").and(neq("s", "w"))),
        r.clone().semi_join(t.clone(), eq("s", "w")),
        r.clone().anti_join(t.clone(), eq("a", "k")),
        // Incompatible key representations (ints vs decimals): syntactic
        // equality can never hold, the antijoin keeps everything.
        r.clone().join(RaExpr::relation("dec"), eq("a", "k")),
        r.clone().anti_join(RaExpr::relation("dec"), eq("a", "k")),
        // Mixed-variant key column: the keyset bails to the row path.
        r.clone().join(t.clone(), eq("m", "k")),
        r.clone().semi_join(t.clone(), eq("m", "w")),
        // All-null key column.
        r.clone().anti_join(t.clone(), eq("z", "k")),
        // Nested loops (OR'd conditions hide the equality): bound-row
        // vectorization with hoisted inner-only atoms.
        r.clone().join(t.clone(), eq("a", "k").or(is_null("w"))),
        r.clone().join(
            t.clone(),
            eq("a", "k").or(Condition::Like {
                expr: Operand::Col("w".into()),
                pattern: "%lt%".into(),
                negated: false,
            }),
        ),
        r.clone().semi_join(t.clone(), neq("s", "w").and(eq("d", "e"))),
        r.clone().anti_join(t.clone(), eq("a", "k").or(is_null("k"))),
        // Fused pipelines: filter → project → filter → distinct chains whose
        // later filters read remapped columns.
        r.clone()
            .select(eq_const("a", 2i64).not())
            .project(&["s", "a"])
            .select(eq_const("s", "alpha"))
            .distinct(),
        r.clone().project(&["a"]).select(eq_const("a", 2i64)).union(t.clone().project(&["k"])),
    ]
}

#[test]
fn vectorized_operators_agree_with_row_path_on_typed_columns() {
    let db = typed_db();
    for q in queries() {
        for semantics in [NullSemantics::Sql, NullSemantics::Naive] {
            let vec_engine = Engine::configured(
                &db,
                semantics,
                EngineConfig::from_env().with_parallel_floor(0).with_vectorized(true),
            );
            let row_engine =
                Engine::configured(&db, semantics, EngineConfig::serial().with_vectorized(false));
            let plan = vec_engine.plan(&q).unwrap();
            let vectorized = vec_engine.execute_physical(&plan).unwrap().distinct().sorted();
            let row = row_engine.execute_physical(&plan).unwrap().distinct().sorted();
            assert_eq!(vectorized.tuples(), row.tuples(), "query {q}, semantics {semantics:?}");
        }
    }
}

#[test]
fn batches_roundtrip_every_base_table() {
    let db = typed_db();
    let pool = db.str_pool();
    for name in ["r", "t", "dec"] {
        let relation = db.relation(name).unwrap();
        for morsel in [1, 2, 1024] {
            let batches = relation.to_batches(morsel, pool);
            let back = Relation::from_batches(&batches, pool).unwrap();
            assert_eq!(&back, relation, "table {name}, morsel {morsel}");
        }
    }
}

#[test]
fn operator_outputs_roundtrip_through_batches() {
    // Batch conversion is lossless on operator *outputs* too (fresh
    // schemas, computed rows) — including empty results.
    let db = typed_db();
    let pool = db.str_pool();
    let engine = Engine::configured(&db, NullSemantics::Sql, EngineConfig::serial());
    for q in queries() {
        let out = engine.execute(&q).unwrap();
        let batches = out.to_batches(3, pool);
        if out.is_empty() {
            assert_eq!(batches.len(), 1);
            assert!(batches[0].is_empty());
        }
        let back = Relation::from_batches(&batches, pool).unwrap();
        assert_eq!(back, out, "query {q}");
    }
}

#[test]
fn all_null_and_empty_batches_roundtrip() {
    let db = Database::new();
    let pool = db.str_pool();
    let all_null = rel(&["x", "y"], vec![vec![null(1), null(2)], vec![null(3), null(1)]]);
    let b = Batch::from_rows(all_null.schema().clone(), all_null.tuples(), pool);
    assert_eq!(b.to_rows(pool), all_null.tuples());
    assert!(b.column(0).nulls().any_null());
    assert_eq!(b.column(1).nulls().null_id(1), Some(NullId(1)));
    let empty = rel(&["x"], vec![]);
    let batches = empty.to_batches(16, pool);
    assert_eq!(Relation::from_batches(&batches, pool).unwrap(), empty);
}

#[test]
fn vectorization_toggle_is_observable_in_config() {
    assert!(EngineConfig::serial().vectorized);
    assert!(!EngineConfig::serial().with_vectorized(false).vectorized);
    // The `CERTUS_VECTOR` parsing, checked without mutating the process
    // environment (sibling tests read it concurrently via `from_env`).
    for (val, expect) in
        [(Some("0"), false), (Some("false"), false), (Some(" OFF "), false), (Some("1"), true)]
    {
        assert_eq!(EngineConfig::parse_vector_flag(val), expect, "CERTUS_VECTOR={val:?}");
    }
    assert!(EngineConfig::parse_vector_flag(None));
}
