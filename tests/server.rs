//! End-to-end tests for the certus-server subsystem: snapshot isolation
//! under concurrent writers, byte-identical server vs. local execution,
//! transparent re-preparation across epoch bumps, admission control, and
//! graceful shutdown under a multi-client burst.

use certus::algebra::builder::eq;
use certus::data::builder::rel;
use certus::data::null::NullId;
use certus::data::snapshot::SnapshotStore;
use certus::{Certainty, Database, RaExpr, Session, Tuple, Value};
use certus_server::client::Client;
use certus_server::protocol::WireCertainty;
use certus_server::{answer_body, ErrorCode, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// A small incomplete database where plain SQL produces false positives:
/// `r.a = 1` is returned by `r ANTIJOIN s` under SQL semantics although a
/// valuation sending `⊥₁ ↦ 1` removes it.
fn incomplete_db() -> Database {
    let mut db = Database::new();
    db.insert_relation(
        "r",
        rel(&["a"], vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)]]),
    );
    db.insert_relation("s", rel(&["b"], vec![vec![Value::Null(NullId(1))], vec![Value::Int(3)]]));
    db
}

fn anti_join() -> RaExpr {
    RaExpr::relation("r").anti_join(RaExpr::relation("s"), eq("a", "b"))
}

#[test]
fn concurrent_writers_never_block_readers_and_snapshots_stay_consistent() {
    let mut db = Database::new();
    db.insert_relation("log", rel(&["v"], vec![vec![Value::Int(0)]]));
    let store = Arc::new(SnapshotStore::new(db));
    let base_epoch = store.epoch();
    let base_len = store.pin().relation("log").unwrap().len();
    let stop = Arc::new(AtomicBool::new(false));

    // Invariant: every update inserts exactly one row and bumps the epoch
    // exactly once, so for ANY snapshot `len == base_len + (epoch - base)`.
    let mut readers = Vec::new();
    for _ in 0..4 {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut pins = 0u64;
            let mut last_epoch = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = store.pin();
                let epoch = snap.epoch();
                assert!(epoch >= last_epoch, "epochs move forward");
                last_epoch = epoch;
                let len = snap.relation("log").unwrap().len() as u64;
                assert_eq!(
                    len,
                    base_len as u64 + (epoch - base_epoch),
                    "snapshot content matches its epoch"
                );
                pins += 1;
            }
            pins
        }));
    }

    let writers: Vec<_> = (0..2)
        .map(|w| {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for i in 0..50 {
                    store.update(|db| {
                        db.relation_mut("log")
                            .unwrap()
                            .insert_values(vec![Value::Int((w * 50 + i) as i64)])
                            .unwrap();
                    });
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let pins: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(pins > 0, "readers made progress while writers ran");
    let final_snap = store.pin();
    assert_eq!(final_snap.relation("log").unwrap().len(), base_len + 100);
    assert_eq!(final_snap.epoch(), base_epoch + 100);
}

#[test]
fn server_answers_are_byte_identical_to_local_session_execution() {
    let db = incomplete_db();
    let server = Server::start(db.clone(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let local = Session::builder(db).build();

    let queries = [
        anti_join(),
        RaExpr::relation("r").join(RaExpr::relation("s"), eq("a", "b")),
        RaExpr::relation("r").select(certus::algebra::builder::eq_const("a", 2i64)),
        RaExpr::relation("r").union(RaExpr::relation("r")),
    ];
    for query in &queries {
        for (wire, cert) in [
            (WireCertainty::Plain, Certainty::Plain),
            (WireCertainty::CertainPlus, Certainty::CertainPlus),
            (WireCertainty::PossibleStar, Certainty::PossibleStar),
            (WireCertainty::Both, Certainty::Both),
        ] {
            let served = client.query(wire, query).unwrap();
            let expected = answer_body(&local.execute(query, cert).unwrap()).encode();
            assert_eq!(
                served.canonical_bytes(),
                expected,
                "server bytes differ from local session for {query:?} under {cert:?}"
            );
            assert!(!served.reprepared);
        }
    }
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn stale_prepared_statements_are_transparently_re_prepared() {
    let server = Server::start(incomplete_db(), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let scan_r = RaExpr::relation("r");
    let (stmt, prepared_epoch) = client.prepare(WireCertainty::Plain, &scan_r).unwrap();
    assert_eq!(prepared_epoch, server.epoch());
    let first = client.execute(stmt).unwrap();
    assert!(!first.reprepared, "fresh plan executes as-is");
    let before = first.body.plain.as_ref().unwrap().len();
    assert_eq!(before, 3);

    // A write bumps the schema epoch; the server-side plan is now stale.
    let new_epoch = client.insert("r", vec![Tuple::new(vec![Value::Int(42)])]).unwrap();
    assert!(new_epoch > prepared_epoch);

    let second = client.execute(stmt).unwrap();
    assert!(second.reprepared, "stale plan was re-prepared server-side");
    let after = second.body.plain.as_ref().unwrap().len();
    assert_eq!(after, before + 1, "re-prepared plan sees the inserted row");

    let third = client.execute(stmt).unwrap();
    assert!(!third.reprepared, "refreshed plan is kept for later executes");

    let stats = client.stats().unwrap();
    assert!(stats.stale_replans >= 1);
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn connection_cap_refuses_excess_clients() {
    let config = ServerConfig { max_connections: 1, ..ServerConfig::default() };
    let server = Server::start(incomplete_db(), config).unwrap();
    let first = Client::connect(server.local_addr()).unwrap();
    match Client::connect(server.local_addr()) {
        Err(certus_server::ClientError::Server { code, .. }) => {
            assert_eq!(code, ErrorCode::TooManyConnections);
        }
        Err(other) => panic!("expected a connection-cap refusal, got {other}"),
        Ok(_) => panic!("expected a connection-cap refusal, got an admitted client"),
    }
    first.close().unwrap();
    // With the slot free again, a new client is admitted. The reader thread
    // needs a poll tick to unregister, so retry briefly.
    let mut admitted = None;
    for _ in 0..100 {
        match Client::connect(server.local_addr()) {
            Ok(c) => {
                admitted = Some(c);
                break;
            }
            Err(_) => thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    admitted.expect("slot frees after close").close().unwrap();
    server.shutdown();
}

#[test]
fn full_queue_sheds_requests_with_overloaded() {
    // One executor, a two-slot queue: a heavy query occupies the executor
    // while a burst of pipelined queries lands, so most of the burst must be
    // shed with `Overloaded` rather than queued without bound.
    let mut db = Database::new();
    let rows: Vec<Vec<Value>> = (0..400).map(|i| vec![Value::Int(i)]).collect();
    db.insert_relation("big", rel(&["a"], rows));
    let config = ServerConfig { executors: 1, queue_capacity: 2, ..ServerConfig::default() };
    let server = Server::start(db, config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let heavy = RaExpr::relation("big").product(RaExpr::relation("big"));
    let light = RaExpr::relation("big");
    let mut ids = vec![client.send_query(WireCertainty::Plain, &heavy).unwrap()];
    for _ in 0..10 {
        ids.push(client.send_query(WireCertainty::Plain, &light).unwrap());
    }

    let mut answered = 0;
    let mut shed = 0;
    for _ in 0..ids.len() {
        let (id, resp) = client.recv().unwrap();
        assert!(ids.contains(&id), "response {id} matches a request");
        match resp {
            certus_server::Response::Answers { .. } => answered += 1,
            certus_server::Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::Overloaded);
                shed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(answered + shed, 11, "every request gets exactly one response");
    assert!(shed >= 1, "a two-slot queue cannot hold a ten-request burst");
    assert!(answered >= 1, "the heavy query itself completes");
    let stats = client.stats().unwrap();
    assert!(stats.rejected >= shed as u64);
    client.close().unwrap();
    server.shutdown();
}

#[test]
fn many_clients_burst_then_server_shuts_down_cleanly() {
    let server = Server::start(incomplete_db(), ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let expected = {
        let local = Session::builder(incomplete_db()).build();
        answer_body(&local.execute(&anti_join(), Certainty::Both).unwrap()).encode()
    };

    let clients: Vec<_> = (0..8)
        .map(|_| {
            let expected = expected.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..10 {
                    let got = client.query(WireCertainty::Both, &anti_join()).unwrap();
                    assert_eq!(got.canonical_bytes(), expected);
                }
                client.close().unwrap();
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let mut closer = Client::connect(addr).unwrap();
    let stats = closer.stats().unwrap();
    assert!(stats.requests >= 80, "all burst queries were served");
    closer.shutdown_server().unwrap();
    assert!(server.shutdown_requested());
    server.shutdown();
}
