//! End-to-end tests for WAL-shipping replication: read replicas and the
//! `NotPrimary` redirect, checkpoint bootstrap and rotation-following,
//! sync-quorum acks, operator promotion, graceful primary restarts without
//! re-bootstrap, the replica-aware [`ClusterClient`], and fault injection
//! on the stream and in the server above the storage layer.

use certus::data::builder::rel;
use certus::obs::failpoint::{failpoints, FailAction};
use certus::{Database, RaExpr, Tuple, Value};
use certus_server::client::{Client, RetryPolicy};
use certus_server::protocol::ReplRole;
use certus_server::replication::{FP_REPL_APPLY, FP_REPL_SEND};
use certus_server::server::{FP_ENQUEUE, FP_PUBLISH, FP_RESPOND};
use certus_server::{
    ClientError, ClusterClient, ErrorCode, ReplMode, ReplicationConfig, Server, ServerConfig,
    WireCertainty,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// The failpoint registry is process-wide and the replication failpoint
/// names are fixed, so the tests in this binary run one at a time.
static GATE: Mutex<()> = Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    static UNIQ: AtomicU64 = AtomicU64::new(0);
    let n = UNIQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("certus-replication-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_db() -> Database {
    let mut db = Database::new();
    db.insert_relation("log", rel(&["v"], vec![vec![Value::Int(0)]]));
    db
}

fn node_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        executors: 2,
        engine_threads: 1,
        poll_interval_ms: 5,
        data_dir: Some(dir.to_path_buf()),
        checkpoint_every: 0,
        ..ServerConfig::default()
    }
}

fn primary_config(dir: &Path, mode: ReplMode) -> ServerConfig {
    ServerConfig { replication: Some(ReplicationConfig::primary(mode)), ..node_config(dir) }
}

fn replica_config(dir: &Path, primary: &str) -> ServerConfig {
    let repl = ReplicationConfig {
        reconnect_ms: 10,
        ..ReplicationConfig::replica(primary, ReplMode::Async)
    };
    ServerConfig { replication: Some(repl), ..node_config(dir) }
}

fn row(v: i64) -> Vec<Tuple> {
    vec![Tuple::new(vec![Value::Int(v)])]
}

fn log_values(client: &mut Client) -> Vec<i64> {
    let answers = client.query(WireCertainty::Plain, &RaExpr::relation("log")).expect("query log");
    answers
        .body
        .plain
        .expect("plain answers")
        .iter()
        .map(|t| match t.values()[0] {
            Value::Int(v) => v,
            ref other => panic!("unexpected value {other:?}"),
        })
        .collect()
}

/// Poll `f` until it returns `Some`, panicking with `what` on timeout.
fn wait_for<T>(what: &str, timeout: Duration, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn replicas_serve_reads_and_refuse_writes_with_a_redirect() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (pdir, rdir) = (temp_dir("reads-p"), temp_dir("reads-r"));
    let primary =
        Server::start(seed_db(), primary_config(&pdir, ReplMode::Sync { quorum: 1 })).unwrap();
    let paddr = primary.local_addr().to_string();
    let replica = Server::start(seed_db(), replica_config(&rdir, &paddr)).unwrap();

    let mut pc = Client::connect(&paddr).expect("connect primary");
    for i in 1..=5 {
        // Sync mode: each ack means the replica applied and fsync'd the
        // record, so the replica read below needs no settling loop.
        pc.insert("log", row(i)).expect("quorum-acked insert");
    }

    let mut rc = Client::connect(replica.local_addr()).expect("connect replica");
    assert_eq!(log_values(&mut rc), vec![0, 1, 2, 3, 4, 5], "replica serves the acked writes");

    // Writes are refused with the primary's address, verbatim.
    match rc.insert("log", row(99)).expect_err("replicas refuse writes") {
        ClientError::Server { code: ErrorCode::NotPrimary, message } => {
            assert_eq!(message, paddr, "the NotPrimary message is the redirect target");
        }
        other => panic!("expected NotPrimary, got {other}"),
    }

    // Status frames see both sides of the stream.
    let ps = pc.repl_status().expect("primary status");
    assert_eq!(ps.role, ReplRole::Primary);
    assert_eq!(ps.mode, 2, "sync mode");
    assert_eq!(ps.quorum, 1);
    assert_eq!(ps.replicas.len(), 1, "one live subscriber");
    assert_eq!(ps.replicas[0].lag_bytes, 0, "a quorum-acked stream has no lag");
    let rs = rc.repl_status().expect("replica status");
    assert_eq!(rs.role, ReplRole::Replica);
    assert_eq!(rs.primary_addr.as_deref(), Some(paddr.as_str()));
    assert_eq!(rs.term, ps.term);

    drop(pc);
    drop(rc);
    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn a_late_replica_bootstraps_from_checkpoint_and_follows_rotations() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (pdir, rdir) = (temp_dir("boot-p"), temp_dir("boot-r"));
    let mut config = primary_config(&pdir, ReplMode::Async);
    config.checkpoint_every = 4;
    let primary = Server::start(seed_db(), config).unwrap();
    let paddr = primary.local_addr().to_string();

    let mut pc = Client::connect(&paddr).expect("connect primary");
    let mut expected = vec![0i64];
    // Cross checkpoint_every twice, so the newest generation is well past
    // the seed: the late replica must bootstrap, not replay from zero.
    for i in 1..=10 {
        pc.insert("log", row(i)).expect("insert");
        expected.push(i);
    }

    let replica = Server::start(seed_db(), replica_config(&rdir, &paddr)).unwrap();
    let mut rc = Client::connect(replica.local_addr()).expect("connect replica");
    wait_for("the late replica to catch up", Duration::from_secs(5), || {
        (log_values(&mut rc) == expected).then_some(())
    });
    let installed = replica.durable().expect("replica is durable").checkpoints_installed();
    assert_eq!(installed, 1, "exactly one checkpoint bootstrap");

    // Live traffic that crosses another fold: the fold happens inside the
    // insert that crosses `checkpoint_every`, so a streaming replica is
    // always at least one record behind the retirement point and must
    // re-bootstrap from the new generation's checkpoint. Documented cost
    // of folding under write load.
    for i in 11..=12 {
        pc.insert("log", row(i)).expect("insert");
        expected.push(i);
    }
    wait_for("the replica to recover from a mid-stream fold", Duration::from_secs(5), || {
        (log_values(&mut rc) == expected).then_some(())
    });

    // A fold at quiescence is different: the caught-up subscriber sits
    // exactly at the retired generation's final position, so it follows
    // with a cheap local rotation — no checkpoint transfer.
    let installed = replica.durable().expect("replica is durable").checkpoints_installed();
    primary.durable().expect("primary is durable").checkpoint().expect("quiescent fold");
    for i in 13..=14 {
        pc.insert("log", row(i)).expect("insert");
        expected.push(i);
    }
    wait_for("the replica to follow the quiescent rotation", Duration::from_secs(5), || {
        (log_values(&mut rc) == expected).then_some(())
    });
    assert_eq!(
        replica.durable().expect("replica is durable").checkpoints_installed(),
        installed,
        "a quiescent rotation is a local fold, not a checkpoint transfer"
    );

    drop(pc);
    drop(rc);
    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn sync_mode_withholds_acks_without_a_quorum() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (pdir, rdir) = (temp_dir("quorum-p"), temp_dir("quorum-r"));
    let mut config = primary_config(&pdir, ReplMode::Sync { quorum: 1 });
    if let Some(repl) = config.replication.as_mut() {
        repl.ack_timeout_ms = 150;
    }
    let primary = Server::start(seed_db(), config).unwrap();
    let paddr = primary.local_addr().to_string();
    let mut pc = Client::connect(&paddr).expect("connect primary");

    // No replica is subscribed: the write is durable locally but the ack
    // must be withheld — the client sees an honest indeterminate error.
    match pc.insert("log", row(1)).expect_err("no quorum, no ack") {
        ClientError::Server { code: ErrorCode::Internal, message } => {
            assert!(message.contains("replica ack"), "names the missing quorum: {message}");
        }
        other => panic!("expected an Internal quorum error, got {other}"),
    }
    assert_eq!(log_values(&mut pc), vec![0, 1], "the unacked write is still durable locally");

    // Once a replica subscribes, the same configuration acks again.
    let replica = Server::start(seed_db(), replica_config(&rdir, &paddr)).unwrap();
    wait_for("quorum to recover once a replica subscribes", Duration::from_secs(5), || {
        pc.insert("log", row(2)).ok()
    });

    drop(pc);
    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn promote_seals_the_stream_and_turns_the_replica_writable() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (pdir, rdir) = (temp_dir("promote-p"), temp_dir("promote-r"));
    let primary =
        Server::start(seed_db(), primary_config(&pdir, ReplMode::Sync { quorum: 1 })).unwrap();
    let paddr = primary.local_addr().to_string();
    let replica = Server::start(seed_db(), replica_config(&rdir, &paddr)).unwrap();

    let mut pc = Client::connect(&paddr).expect("connect primary");
    for i in 1..=5 {
        pc.insert("log", row(i)).expect("quorum-acked insert");
    }
    let old_term = pc.repl_status().expect("status").term;
    drop(pc);
    primary.shutdown();

    // Operator failover: promote the replica, which seals its apply loop,
    // makes it writable, and bumps the wire-visible term.
    let mut rc = Client::connect(replica.local_addr()).expect("connect replica");
    rc.promote().expect("promote");
    let status = rc.repl_status().expect("status after promote");
    assert_eq!(status.role, ReplRole::Primary);
    assert_eq!(status.term, old_term + 1, "promotion bumps the term");
    assert_eq!(status.primary_addr, None);

    // Every quorum-acked write survived, and the node now takes writes.
    assert_eq!(log_values(&mut rc), vec![0, 1, 2, 3, 4, 5]);
    rc.insert("log", row(6)).expect("the promoted node is writable");
    assert_eq!(log_values(&mut rc), vec![0, 1, 2, 3, 4, 5, 6]);

    // Promotion is idempotent: promoting a primary just acks.
    rc.promote().expect("re-promote is a no-op");
    assert_eq!(rc.repl_status().expect("status").term, old_term + 1);

    drop(rc);
    replica.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn graceful_primary_restart_needs_no_rebootstrap() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (pdir, rdir) = (temp_dir("drain-p"), temp_dir("drain-r"));
    let primary = Server::start(seed_db(), primary_config(&pdir, ReplMode::Async)).unwrap();
    let paddr = primary.local_addr().to_string();
    let replica = Server::start(seed_db(), replica_config(&rdir, &paddr)).unwrap();
    let mut rc = Client::connect(replica.local_addr()).expect("connect replica");

    let mut pc = Client::connect(&paddr).expect("connect primary");
    let mut expected = vec![0i64];
    for i in 1..=8 {
        // Async mode: these acks do NOT wait for the replica, so some of
        // them are still in flight when the shutdown below begins.
        pc.insert("log", row(i)).expect("insert");
        expected.push(i);
    }
    drop(pc);
    // Graceful shutdown must drain the stream: flush every durable record
    // to the subscriber and send a clean close.
    primary.shutdown();
    wait_for("the drained stream to deliver every acked write", Duration::from_secs(5), || {
        (log_values(&mut rc) == expected).then_some(())
    });
    let installed = replica.durable().expect("replica is durable").checkpoints_installed();

    // Restart the primary on the same address; the replica reconnects and
    // resumes incrementally from its own durable position.
    let mut config = primary_config(&pdir, ReplMode::Async);
    config.addr = paddr.clone();
    let primary = Server::start(seed_db(), config).expect("restart primary on the same address");
    let mut pc = Client::connect(&paddr).expect("reconnect primary");
    assert_eq!(log_values(&mut pc), expected, "the primary recovered its own log");
    for i in 9..=12 {
        pc.insert("log", row(i)).expect("insert after restart");
        expected.push(i);
    }
    wait_for("the reconnected replica to catch up", Duration::from_secs(5), || {
        (log_values(&mut rc) == expected).then_some(())
    });
    assert_eq!(
        replica.durable().expect("replica is durable").checkpoints_installed(),
        installed,
        "a graceful restart never forces the replica back through bootstrap"
    );

    drop(pc);
    drop(rc);
    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn cluster_client_distributes_reads_and_follows_write_redirects() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let (pdir, r1dir, r2dir) = (temp_dir("cc-p"), temp_dir("cc-r1"), temp_dir("cc-r2"));
    let primary =
        Server::start(seed_db(), primary_config(&pdir, ReplMode::Sync { quorum: 1 })).unwrap();
    let paddr = primary.local_addr().to_string();
    let replica1 = Server::start(seed_db(), replica_config(&r1dir, &paddr)).unwrap();
    let replica2 = Server::start(seed_db(), replica_config(&r2dir, &paddr)).unwrap();
    let r1addr = replica1.local_addr().to_string();
    let r2addr = replica2.local_addr().to_string();

    // Replicas listed first: the first write lands on a replica and must
    // follow the NotPrimary redirect to the real primary.
    let mut cluster = ClusterClient::new(vec![r1addr, r2addr, paddr.clone()]);
    cluster.insert("log", row(1)).expect("redirected insert");
    assert_eq!(cluster.redirects(), 1, "one NotPrimary redirect was followed");
    assert_eq!(cluster.primary_endpoint(), paddr, "the redirect target is remembered");
    cluster.insert("log", row(2)).expect("subsequent inserts go straight to the primary");
    assert_eq!(cluster.redirects(), 1);

    // Reads round-robin across all three nodes. Sync acks mean at least one
    // replica is current; poll until both are, then spread reads.
    let expected = vec![0i64, 1, 2];
    let mut check = Client::connect(replica2.local_addr()).expect("connect r2");
    wait_for("both replicas to converge", Duration::from_secs(5), || {
        (log_values(&mut check) == expected).then_some(())
    });
    for _ in 0..6 {
        let answers = cluster.query(WireCertainty::Plain, &RaExpr::relation("log")).expect("read");
        assert_eq!(answers.body.plain.expect("plain").len(), expected.len());
    }

    // Kill one replica: reads fail over to live nodes without surfacing.
    replica1.shutdown();
    for _ in 0..6 {
        cluster.query(WireCertainty::Plain, &RaExpr::relation("log")).expect("failover read");
    }
    assert!(cluster.read_failovers() >= 1, "at least one read failed over the dead node");

    // Probing finds the primary by role and term.
    assert_eq!(cluster.probe_primary().expect("probe"), paddr);

    drop(check);
    replica2.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&r1dir);
    let _ = std::fs::remove_dir_all(&r2dir);
}

#[test]
fn stream_faults_resubscribe_without_loss_or_rebootstrap() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    failpoints().disarm_all();
    let (pdir, rdir) = (temp_dir("fault-p"), temp_dir("fault-r"));
    let primary =
        Server::start(seed_db(), primary_config(&pdir, ReplMode::Sync { quorum: 1 })).unwrap();
    let paddr = primary.local_addr().to_string();
    let replica = Server::start(seed_db(), replica_config(&rdir, &paddr)).unwrap();
    let mut pc = Client::connect(&paddr).expect("connect primary");

    // Establish the stream (and the one bootstrap) with a clean write.
    pc.insert("log", row(1)).expect("baseline insert");
    let installed = replica.durable().expect("replica is durable").checkpoints_installed();

    // A send fault severs the subscriber mid-stream; the replica must
    // re-subscribe and the quorum-gated insert still completes.
    failpoints().arm(FP_REPL_SEND, FailAction::Error, 0, 1);
    pc.insert("log", row(2)).expect("insert survives a severed stream");

    // A torn segment: a prefix of the frame reaches the wire, then the
    // socket dies. The replica's framing layer discards it and recovers.
    failpoints().arm(FP_REPL_SEND, FailAction::Torn(12), 0, 1);
    pc.insert("log", row(3)).expect("insert survives a torn segment");

    // An apply fault on the replica side: the segment is refused before it
    // touches the WAL, the stream drops, and the retry applies it cleanly.
    failpoints().arm(FP_REPL_APPLY, FailAction::Error, 0, 1);
    pc.insert("log", row(4)).expect("insert survives an apply fault");
    failpoints().disarm_all();

    let mut rc = Client::connect(replica.local_addr()).expect("connect replica");
    assert_eq!(log_values(&mut rc), vec![0, 1, 2, 3, 4], "no write lost, none duplicated");
    assert_eq!(
        replica.durable().expect("replica is durable").checkpoints_installed(),
        installed,
        "faults re-subscribe from the durable position, not through bootstrap"
    );

    drop(pc);
    drop(rc);
    replica.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

#[test]
fn server_failpoints_inject_failures_above_the_storage_layer() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    failpoints().disarm_all();
    let dir = temp_dir("serverfp");
    let server = Server::start(seed_db(), node_config(&dir)).unwrap();
    let mut client =
        Client::connect(server.local_addr()).expect("connect").with_retry(RetryPolicy {
            base_backoff_ms: 1,
            max_backoff_ms: 5,
            ..RetryPolicy::default()
        });
    client.set_op_timeout(Some(Duration::from_millis(500))).expect("op timeout");

    // server.enqueue: the request is shed as Overloaded before touching any
    // state; the client's retry policy resends and succeeds.
    failpoints().arm(FP_ENQUEUE, FailAction::Error, 0, 1);
    client.query(WireCertainty::Plain, &RaExpr::relation("log")).expect("retried past the shed");
    assert_eq!(client.retries(), 1);

    // server.respond: the response frame is dropped as if the socket died
    // after execution; the idempotent ping times out and is resent.
    failpoints().arm(FP_RESPOND, FailAction::Error, 0, 1);
    client.ping().expect("retried past the dropped response");
    assert_eq!(client.retries(), 2);

    // server.publish: the insert is durable and published but its ack is
    // withheld — the canonical indeterminate write. The error is honest
    // and the row is actually there.
    failpoints().arm(FP_PUBLISH, FailAction::Error, 0, 1);
    match client.insert("log", row(7)).expect_err("ack withheld") {
        ClientError::Server { code: ErrorCode::Internal, message } => {
            assert!(message.contains("server.publish"), "names the injection site: {message}");
        }
        other => panic!("expected an Internal error, got {other}"),
    }
    failpoints().disarm_all();
    assert_eq!(log_values(&mut client), vec![0, 7], "the unacked write is durable");

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
